package ml

import (
	"math"
	"math/rand"
)

// LogRegConfig configures logistic regression.
type LogRegConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
}

// LogReg is L2-regularized logistic regression trained by SGD with sparse
// per-example updates (touching only set bits) and an epoch-level weight
// decay.
type LogReg struct {
	cfg     LogRegConfig
	trained bool
	w       []float64
	b       float64
}

// NewLogReg returns an untrained logistic regression.
func NewLogReg(cfg LogRegConfig) *LogReg { return &LogReg{cfg: cfg} }

// Name implements Classifier.
func (lr *LogReg) Name() string { return "Logistic Regression" }

// Train implements Classifier.
func (lr *LogReg) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(lr.cfg.Seed))
	lr.w = make([]float64, d.NumFeatures)
	lr.b = 0
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	eta := lr.cfg.LearningRate
	for epoch := 0; epoch < lr.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			ex := &d.Examples[i]
			p := sigmoid(lr.Score(ex.X))
			y := 0.0
			if ex.Y {
				y = 1
			}
			g := eta * (y - p)
			ex.X.ForEachSet(func(f int) { lr.w[f] += g })
			lr.b += g
		}
		if lr.cfg.L2 > 0 {
			decay := 1 - eta*lr.cfg.L2*float64(n)
			if decay < 0 {
				decay = 0
			}
			for f := range lr.w {
				lr.w[f] *= decay
			}
		}
		eta *= 0.95 // simple schedule
	}
	lr.trained = true
	return nil
}

// Score implements Scorer (pre-sigmoid logit).
func (lr *LogReg) Score(x Vector) float64 {
	s := lr.b
	x.ForEachSet(func(f int) {
		if f < len(lr.w) {
			s += lr.w[f]
		}
	})
	return s
}

// Predict implements Classifier.
func (lr *LogReg) Predict(x Vector) bool {
	if !lr.trained {
		return false
	}
	return lr.Score(x) > 0
}

func sigmoid(z float64) float64 {
	if z < -35 {
		return 0
	}
	if z > 35 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}
