package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Linear is the tier-1 triage scorer: a plain linear model over the
// manifest-only (permission/intent) feature vector, per the SigPID line of
// work — a small ranked permission set separates most of the distribution
// at negligible cost. It is deliberately minimal compared to LogReg: bare
// weights plus bias, deterministic byte-stable serialization, and no
// training state, because it travels inside the content-addressed APKMODEL
// artifact and hot-swaps with the serving generation.
type Linear struct {
	W []float64
	B float64
}

// LinearConfig configures TrainLinear's SGD loop (logistic loss, sparse
// per-example updates, epoch-level L2 decay — the same discipline as
// LogReg, kept separate so triage training can be tuned independently of
// the Table 2 baselines).
type LinearConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
}

// DefaultLinearConfig returns the triage training configuration.
func DefaultLinearConfig(seed int64) LinearConfig {
	return LinearConfig{Epochs: 12, LearningRate: 0.1, L2: 1e-4, Seed: seed}
}

// TrainLinear fits a linear scorer on the dataset. Training is
// deterministic in (dataset, cfg): the same inputs produce bit-identical
// weights, which the artifact digest relies on.
func TrainLinear(d *Dataset, cfg LinearConfig) (*Linear, error) {
	if err := checkTrainable(d); err != nil {
		return nil, err
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("ml: TrainLinear: %d epochs", cfg.Epochs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &Linear{W: make([]float64, d.NumFeatures)}
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	eta := cfg.LearningRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			ex := &d.Examples[i]
			p := sigmoid(l.Score(ex.X))
			y := 0.0
			if ex.Y {
				y = 1
			}
			g := eta * (y - p)
			ex.X.ForEachSet(func(f int) { l.W[f] += g })
			l.B += g
		}
		if cfg.L2 > 0 {
			decay := 1 - eta*cfg.L2*float64(n)
			if decay < 0 {
				decay = 0
			}
			for f := range l.W {
				l.W[f] *= decay
			}
		}
		eta *= 0.95
	}
	return l, nil
}

// Score returns the pre-sigmoid logit for x. Bits beyond the trained
// dimensionality are ignored, mirroring LogReg.Score.
func (l *Linear) Score(x Vector) float64 {
	s := l.B
	x.ForEachSet(func(f int) {
		if f < len(l.W) {
			s += l.W[f]
		}
	})
	return s
}

// Prob returns the calibrated malice probability sigmoid(Score) — the
// value the triage band [lo, hi] is expressed in.
func (l *Linear) Prob(x Vector) float64 { return sigmoid(l.Score(x)) }

// NumFeatures returns the trained feature dimensionality.
func (l *Linear) NumFeatures() int { return len(l.W) }

// ErrCorruptLinear marks a binary linear-model payload that fails
// structural validation; decode failures wrap it and never panic.
var ErrCorruptLinear = errors.New("ml: corrupt linear-model encoding")

// AppendBinary appends the model's deterministic binary encoding to buf:
// u32 weight count, f64 bias bits, then the weight bit patterns, all
// little-endian. Identical models encode to identical bytes.
func (l *Linear) AppendBinary(buf []byte) []byte {
	buf = appendU32(buf, uint32(len(l.W)))
	buf = appendF64(buf, l.B)
	for _, w := range l.W {
		buf = appendF64(buf, w)
	}
	return buf
}

// DecodeLinearBinary decodes a model encoded by AppendBinary from the
// front of data, returning the model and the number of bytes consumed.
func DecodeLinearBinary(data []byte) (*Linear, int, error) {
	r := binReader{data: data}
	n, err := r.u32()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrCorruptLinear, err)
	}
	if n > maxReasonableCount {
		return nil, 0, fmt.Errorf("%w: %d weights", ErrCorruptLinear, n)
	}
	bias, err := r.u64()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrCorruptLinear, err)
	}
	l := &Linear{W: make([]float64, n), B: math.Float64frombits(bias)}
	for i := range l.W {
		bits, err := r.u64()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %w", ErrCorruptLinear, err)
		}
		l.W[i] = math.Float64frombits(bits)
	}
	return l, r.off, nil
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}
