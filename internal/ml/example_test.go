package ml_test

import (
	"fmt"

	"apichecker/internal/ml"
)

// ExampleRandomForest demonstrates the deployed classifier on a toy
// problem: apps that touch both "SMS" (bit 0) and "network" (bit 1) are
// malicious.
func ExampleRandomForest() {
	d := ml.NewDataset(4)
	add := func(bits []int, malicious bool) {
		v := ml.NewVector(4)
		for _, b := range bits {
			v.Set(b)
		}
		_ = d.Add(v, malicious)
	}
	for i := 0; i < 30; i++ {
		add([]int{0, 1}, true)  // SMS + network
		add([]int{0}, false)    // SMS only: a messaging app
		add([]int{1, 2}, false) // network + UI: a browser
		add([]int{3}, false)    // neither
	}

	rf := ml.NewRandomForest(ml.DefaultForestConfig(1))
	if err := rf.Train(d); err != nil {
		panic(err)
	}
	query := ml.NewVector(4)
	query.Set(0)
	query.Set(1)
	fmt.Println("SMS+network app malicious:", rf.Predict(query))
	query.Clear(1)
	fmt.Println("SMS-only app malicious:  ", rf.Predict(query))
	// Output:
	// SMS+network app malicious: true
	// SMS-only app malicious:   false
}
