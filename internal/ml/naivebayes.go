package ml

import "math"

// NaiveBayes is a Bernoulli naive Bayes classifier with Laplace smoothing.
// Prediction cost is O(set bits): the all-bits-clear baseline score is
// precomputed and each set bit contributes a delta.
type NaiveBayes struct {
	trained bool
	base    float64   // prior + sum of log((1-p1)/(1-p0)) over all features
	delta   []float64 // per-feature score change when the bit is set
}

// NewNaiveBayes returns an untrained Bernoulli NB.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{} }

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "Naive Bayes" }

// Train implements Classifier.
func (nb *NaiveBayes) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	pos, neg := d.FeatureCounts()
	nPos := d.Positives()
	nNeg := d.Len() - nPos

	nb.base = math.Log(float64(nPos) / float64(nNeg))
	nb.delta = make([]float64, d.NumFeatures)
	for f := 0; f < d.NumFeatures; f++ {
		p1 := (float64(pos[f]) + 1) / (float64(nPos) + 2) // P(bit|malicious)
		p0 := (float64(neg[f]) + 1) / (float64(nNeg) + 2) // P(bit|benign)
		nb.base += math.Log((1 - p1) / (1 - p0))
		nb.delta[f] = math.Log(p1/(1-p1)) - math.Log(p0/(1-p0))
	}
	nb.trained = true
	return nil
}

// Score implements Scorer (log-odds of malice).
func (nb *NaiveBayes) Score(x Vector) float64 {
	s := nb.base
	x.ForEachSet(func(f int) {
		if f < len(nb.delta) {
			s += nb.delta[f]
		}
	})
	return s
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(x Vector) bool {
	if !nb.trained {
		return false
	}
	return nb.Score(x) > 0
}
