package ml

import (
	"fmt"
	"time"
)

// CVResult aggregates a k-fold cross validation.
type CVResult struct {
	Model     string
	Folds     int
	Confusion Confusion // summed over folds

	// TrainTime sums fold training durations; EvalTime sums fold
	// prediction durations. Table 2's "training time" column corresponds
	// to TrainTime for model-fitting algorithms; for kNN the cost shows
	// up in EvalTime (noted in EXPERIMENTS.md).
	TrainTime time.Duration
	EvalTime  time.Duration

	// DeduplicatedTest counts test examples dropped by the duplicate-
	// vector leakage control.
	DeduplicatedTest int
}

// CrossValidate runs stratified k-fold cross validation (§4.2: 10-fold,
// with duplicate feature vectors between train and test removed from the
// test fold). The factory builds a fresh classifier per fold.
func CrossValidate(factory func() Classifier, d *Dataset, k int, seed int64) (*CVResult, error) {
	if d.Len() < 2*k {
		return nil, fmt.Errorf("ml: dataset too small (%d) for %d-fold CV", d.Len(), k)
	}
	folds := d.StratifiedFolds(k, seed)
	res := &CVResult{Folds: k}
	for fi, testIdx := range folds {
		inTest := make(map[int]bool, len(testIdx))
		for _, i := range testIdx {
			inTest[i] = true
		}
		trainIdx := make([]int, 0, d.Len()-len(testIdx))
		for i := 0; i < d.Len(); i++ {
			if !inTest[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		train := d.Subset(trainIdx)
		test := d.Subset(testIdx).RemoveDuplicatesOf(train)
		res.DeduplicatedTest += len(testIdx) - test.Len()
		if test.Len() == 0 {
			continue
		}

		c := factory()
		if res.Model == "" {
			res.Model = c.Name()
		}
		start := time.Now()
		if err := c.Train(train); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		res.TrainTime += time.Since(start)

		start = time.Now()
		res.Confusion.Add(Evaluate(c, test))
		res.EvalTime += time.Since(start)
	}
	return res, nil
}

// TrainEval is the single-split variant: train on train, evaluate on test
// (after duplicate removal), reporting times.
func TrainEval(c Classifier, train, test *Dataset) (Confusion, time.Duration, time.Duration, error) {
	test = test.RemoveDuplicatesOf(train)
	start := time.Now()
	if err := c.Train(train); err != nil {
		return Confusion{}, 0, 0, err
	}
	trainTime := time.Since(start)
	start = time.Now()
	m := Evaluate(c, test)
	return m, trainTime, time.Since(start), nil
}
