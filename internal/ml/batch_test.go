package ml

import (
	"testing"
)

// TestScoreBatchBitIdentical is batch inference's core contract: every
// ScoreBatch output equals Score on the same row, bit for bit, across
// chunk boundaries (the block is larger than scoreBatchChunk).
func TestScoreBatchBitIdentical(t *testing.T) {
	d := syntheticDataset(700, 120, 7)
	rf := NewRandomForest(ForestConfig{Trees: 40, MaxDepth: 12, Seed: 3})
	if err := rf.Train(d); err != nil {
		t.Fatal(err)
	}

	xs := datasetVectors(d)
	if len(xs) <= scoreBatchChunk {
		t.Fatalf("test block %d too small to cross the %d-row chunk boundary", len(xs), scoreBatchChunk)
	}
	batch := rf.ScoreBatch(xs, nil)
	for i, x := range xs {
		if got, want := batch[i], rf.Score(x); got != want {
			t.Fatalf("row %d: ScoreBatch %v != Score %v", i, got, want)
		}
	}

	// Caller-provided output slice is filled and returned.
	out := make([]float64, len(xs))
	if got := rf.ScoreBatch(xs, out); &got[0] != &out[0] {
		t.Fatal("ScoreBatch must fill the provided slice")
	}
	for i := range out {
		if out[i] != batch[i] {
			t.Fatalf("row %d: out-slice run differs", i)
		}
	}
}

// TestPredictBatchMatchesPredict covers the boolean fast path, including
// the untrained guard.
func TestPredictBatchMatchesPredict(t *testing.T) {
	d := syntheticDataset(300, 80, 5)
	rf := NewRandomForest(ForestConfig{Trees: 30, MaxDepth: 10, Seed: 1})

	for _, p := range rf.PredictBatch(datasetVectors(d)) {
		if p {
			t.Fatal("untrained forest predicted true")
		}
	}
	if err := rf.Train(d); err != nil {
		t.Fatal(err)
	}
	xs := datasetVectors(d)
	batch := rf.PredictBatch(xs)
	for i, x := range xs {
		if batch[i] != rf.Predict(x) {
			t.Fatalf("row %d: PredictBatch %v != Predict %v", i, batch[i], rf.Predict(x))
		}
	}
}

// TestEvaluateUsesBatchPath: Evaluate over a BatchClassifier equals the
// per-row confusion, and the forest actually implements the interfaces.
func TestEvaluateUsesBatchPath(t *testing.T) {
	d := syntheticDataset(400, 80, 9)
	rf := NewRandomForest(ForestConfig{Trees: 30, MaxDepth: 10, Seed: 2})
	if err := rf.Train(d); err != nil {
		t.Fatal(err)
	}
	var _ BatchClassifier = rf
	var _ BatchScorer = rf

	got := Evaluate(rf, d)
	var want Confusion
	for i := range d.Examples {
		want.Observe(rf.Predict(d.Examples[i].X), d.Examples[i].Y)
	}
	if got != want {
		t.Fatalf("Evaluate batch path %v != per-row %v", got, want)
	}

	// The score-based evaluators agree with their per-row equivalents too.
	gotAt := EvaluateAt(rf, d, 0.1)
	var wantAt Confusion
	for i := range d.Examples {
		wantAt.Observe(rf.Score(d.Examples[i].X) >= 0.1, d.Examples[i].Y)
	}
	if gotAt != wantAt {
		t.Fatalf("EvaluateAt batch path %v != per-row %v", gotAt, wantAt)
	}
}

func TestScoreBatchEmpty(t *testing.T) {
	rf := NewRandomForest(ForestConfig{Trees: 4, Seed: 1})
	if out := rf.ScoreBatch(nil, nil); len(out) != 0 {
		t.Fatalf("ScoreBatch(nil) = %v, want empty", out)
	}
	if out := rf.PredictBatch(nil); len(out) != 0 {
		t.Fatalf("PredictBatch(nil) = %v, want empty", out)
	}
}
