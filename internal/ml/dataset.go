// Package ml is a from-scratch machine-learning library over sparse binary
// feature vectors, providing the nine classifier families the paper
// benchmarks (Table 2): Naive Bayes, logistic regression, SVM, GBDT, kNN,
// CART, ANN, DNN, and random forest — plus stratified k-fold cross
// validation with duplicate-vector leakage control (§4.2) and Gini feature
// importance (Fig. 13).
//
// Feature vectors are One-Hot encodings ("bit i set" = "feature i
// observed"), stored as packed bitsets: with up to 50K tracked APIs the
// encoding density, popcount-based dot products, and cheap Hamming
// distances all matter.
package ml

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
)

// Vector is a packed bitset feature vector.
type Vector []uint64

// NewVector allocates a vector for n features.
func NewVector(n int) Vector { return make(Vector, (n+63)/64) }

// Set sets bit i.
func (v Vector) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (v Vector) Clear(i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (v Vector) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Ones counts the set bits.
func (v Vector) Ones() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEachSet calls fn for every set bit, ascending.
func (v Vector) ForEachSet(fn func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Dot returns the number of overlapping set bits of two equal-length
// vectors.
func (v Vector) Dot(o Vector) int {
	n := 0
	for i := range v {
		n += bits.OnesCount64(v[i] & o[i])
	}
	return n
}

// Hamming returns the number of differing bits.
func (v Vector) Hamming(o Vector) int {
	n := 0
	for i := range v {
		n += bits.OnesCount64(v[i] ^ o[i])
	}
	return n
}

// Clone copies the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Key returns a map key identifying the exact bit pattern (used for
// duplicate-vector leakage control).
func (v Vector) Key() string {
	b := make([]byte, len(v)*8)
	for i, w := range v {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * j))
		}
	}
	return string(b)
}

// Example is one labelled feature vector.
type Example struct {
	X Vector
	Y bool // true = malicious
}

// Dataset is a labelled collection with a fixed feature dimensionality.
type Dataset struct {
	NumFeatures int
	Examples    []Example
}

// NewDataset creates an empty dataset for n features.
func NewDataset(n int) *Dataset { return &Dataset{NumFeatures: n} }

// Add appends an example; the vector length must match.
func (d *Dataset) Add(x Vector, y bool) error {
	if len(x) != len(NewVector(d.NumFeatures)) {
		return fmt.Errorf("ml: vector has %d words, dataset needs %d", len(x), len(NewVector(d.NumFeatures)))
	}
	d.Examples = append(d.Examples, Example{X: x, Y: y})
	return nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Positives counts malicious examples.
func (d *Dataset) Positives() int {
	n := 0
	for i := range d.Examples {
		if d.Examples[i].Y {
			n++
		}
	}
	return n
}

// Subset returns a dataset view over the given example indexes (vectors are
// shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := NewDataset(d.NumFeatures)
	out.Examples = make([]Example, len(idx))
	for i, j := range idx {
		out.Examples[i] = d.Examples[j]
	}
	return out
}

// Shuffled returns a permuted copy of the dataset (views share vectors).
func (d *Dataset) Shuffled(seed int64) *Dataset {
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	return d.Subset(idx)
}

// Split partitions into train/test by fraction (first trainFrac of a
// shuffled copy).
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	s := d.Shuffled(seed)
	cut := int(float64(s.Len()) * trainFrac)
	if cut < 1 {
		cut = 1
	}
	if cut >= s.Len() {
		cut = s.Len() - 1
	}
	train = NewDataset(d.NumFeatures)
	train.Examples = s.Examples[:cut]
	test = NewDataset(d.NumFeatures)
	test.Examples = s.Examples[cut:]
	return train, test
}

// StratifiedFolds splits example indexes into k folds preserving the class
// ratio, deterministically from seed.
func (d *Dataset) StratifiedFolds(k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i := range d.Examples {
		if d.Examples[i].Y {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[(i+k/2)%k] = append(folds[(i+k/2)%k], idx)
	}
	for _, f := range folds {
		sort.Ints(f)
	}
	return folds
}

// RemoveDuplicatesOf returns a copy of d without examples whose exact
// feature vector also appears in ref — the paper's per-fold leakage control
// (§4.2: identical vectors in train and test exaggerate results).
func (d *Dataset) RemoveDuplicatesOf(ref *Dataset) *Dataset {
	seen := make(map[string]bool, ref.Len())
	for i := range ref.Examples {
		seen[ref.Examples[i].X.Key()] = true
	}
	out := NewDataset(d.NumFeatures)
	for i := range d.Examples {
		if !seen[d.Examples[i].X.Key()] {
			out.Examples = append(out.Examples, d.Examples[i])
		}
	}
	return out
}

// FeatureCounts returns, per feature, how many positive and negative
// examples have the bit set.
func (d *Dataset) FeatureCounts() (pos, neg []int) {
	pos = make([]int, d.NumFeatures)
	neg = make([]int, d.NumFeatures)
	for i := range d.Examples {
		ex := &d.Examples[i]
		counts := neg
		if ex.Y {
			counts = pos
		}
		ex.X.ForEachSet(func(f int) { counts[f]++ })
	}
	return pos, neg
}
