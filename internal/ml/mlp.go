package ml

import (
	"math"
	"math/rand"
)

// MLPConfig configures a multi-layer perceptron. The paper's "ANN" is a
// single hidden layer; "DNN" stacks several.
type MLPConfig struct {
	Hidden       []int
	Epochs       int
	LearningRate float64
	Seed         int64
}

// MLP is a feed-forward network with ReLU hidden layers and a sigmoid
// output, trained with SGD on cross-entropy loss. The first layer exploits
// input sparsity: only columns of set bits are touched.
type MLP struct {
	name    string
	cfg     MLPConfig
	trained bool

	// w[l][j][i] is the weight from unit i of layer l to unit j of
	// layer l+1; layer 0 is the input.
	w [][][]float64
	b [][]float64

	sizes []int // layer sizes including input and output
}

// NewMLP returns an untrained network.
func NewMLP(name string, cfg MLPConfig) *MLP {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{32}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 25
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	return &MLP{name: name, cfg: cfg}
}

// Name implements Classifier.
func (m *MLP) Name() string { return m.name }

// Train implements Classifier.
func (m *MLP) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.sizes = append(append([]int{d.NumFeatures}, m.cfg.Hidden...), 1)
	nLayers := len(m.sizes) - 1
	m.w = make([][][]float64, nLayers)
	m.b = make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		scale := math.Sqrt(2 / float64(in))
		if l == 0 {
			// Sparse binary input: scale by expected active bits,
			// not full width.
			scale = 0.05
		}
		m.w[l] = make([][]float64, out)
		for j := range m.w[l] {
			m.w[l][j] = make([]float64, in)
			for i := range m.w[l][j] {
				m.w[l][j][i] = rng.NormFloat64() * scale
			}
		}
		m.b[l] = make([]float64, out)
	}

	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Pre-allocated activation and delta buffers.
	acts := make([][]float64, nLayers)
	deltas := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		acts[l] = make([]float64, m.sizes[l+1])
		deltas[l] = make([]float64, m.sizes[l+1])
	}

	eta := m.cfg.LearningRate
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			ex := &d.Examples[i]
			m.forward(ex.X, acts)
			p := acts[nLayers-1][0]
			y := 0.0
			if ex.Y {
				y = 1
			}
			// Output delta for sigmoid + cross-entropy.
			deltas[nLayers-1][0] = p - y
			// Hidden deltas (ReLU derivative).
			for l := nLayers - 2; l >= 0; l-- {
				for j := 0; j < m.sizes[l+1]; j++ {
					if acts[l][j] <= 0 {
						deltas[l][j] = 0
						continue
					}
					sum := 0.0
					for k := 0; k < m.sizes[l+2]; k++ {
						sum += deltas[l+1][k] * m.w[l+1][k][j]
					}
					deltas[l][j] = sum
				}
			}
			// Dense updates for layers >= 1.
			for l := nLayers - 1; l >= 1; l-- {
				for j := 0; j < m.sizes[l+1]; j++ {
					g := eta * deltas[l][j]
					if g == 0 {
						continue
					}
					row := m.w[l][j]
					prev := acts[l-1]
					for i2 := range row {
						row[i2] -= g * prev[i2]
					}
					m.b[l][j] -= g
				}
			}
			// Sparse update for the input layer.
			for j := 0; j < m.sizes[1]; j++ {
				g := eta * deltas[0][j]
				if g == 0 {
					continue
				}
				row := m.w[0][j]
				ex.X.ForEachSet(func(f int) { row[f] -= g })
				m.b[0][j] -= g
			}
		}
		eta *= 0.93
	}
	m.trained = true
	return nil
}

// forward fills the activation buffers; hidden layers use ReLU, the output
// a sigmoid.
func (m *MLP) forward(x Vector, acts [][]float64) {
	nLayers := len(m.sizes) - 1
	for j := 0; j < m.sizes[1]; j++ {
		sum := m.b[0][j]
		row := m.w[0][j]
		x.ForEachSet(func(f int) { sum += row[f] })
		if nLayers == 1 {
			acts[0][j] = sigmoid(sum)
		} else {
			acts[0][j] = relu(sum)
		}
	}
	for l := 1; l < nLayers; l++ {
		prev := acts[l-1]
		for j := 0; j < m.sizes[l+1]; j++ {
			sum := m.b[l][j]
			row := m.w[l][j]
			for i := range row {
				sum += row[i] * prev[i]
			}
			if l == nLayers-1 {
				acts[l][j] = sigmoid(sum)
			} else {
				acts[l][j] = relu(sum)
			}
		}
	}
}

func relu(z float64) float64 {
	if z < 0 {
		return 0
	}
	return z
}

// Score implements Scorer (probability minus threshold).
func (m *MLP) Score(x Vector) float64 {
	nLayers := len(m.sizes) - 1
	acts := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		acts[l] = make([]float64, m.sizes[l+1])
	}
	m.forward(x, acts)
	return acts[nLayers-1][0] - 0.5
}

// Predict implements Classifier.
func (m *MLP) Predict(x Vector) bool {
	if !m.trained {
		return false
	}
	return m.Score(x) > 0
}
