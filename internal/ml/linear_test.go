package ml

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// linearDataset synthesizes a separable permission-style dataset: a few
// "significant" bits strongly correlate with the label, the rest are
// noise — the SigPID shape the triage scorer exists for.
func linearDataset(seed int64, n, feats int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset(feats)
	for i := 0; i < n; i++ {
		y := rng.Intn(2) == 0
		v := NewVector(feats)
		for f := 0; f < feats; f++ {
			p := 0.08
			if f < 4 && y {
				p = 0.85 // significant-permission bits
			}
			if rng.Float64() < p {
				v.Set(f)
			}
		}
		d.Add(v, y)
	}
	return d
}

func TestTrainLinearSeparates(t *testing.T) {
	d := linearDataset(3, 400, 48)
	l, err := TrainLinear(d, DefaultLinearConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range d.Examples {
		ex := &d.Examples[i]
		if (l.Prob(ex.X) > 0.5) == ex.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.85 {
		t.Errorf("training accuracy %.3f, want >= 0.85 on a separable set", acc)
	}
	if l.NumFeatures() != 48 {
		t.Errorf("NumFeatures = %d", l.NumFeatures())
	}
}

// TestTrainLinearDeterministic: same dataset + config → bit-identical
// weights (the artifact digest depends on it).
func TestTrainLinearDeterministic(t *testing.T) {
	d := linearDataset(5, 200, 32)
	a, err := TrainLinear(d, DefaultLinearConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainLinear(d, DefaultLinearConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.AppendBinary(nil), b.AppendBinary(nil)) {
		t.Error("repeated training produced different encodings")
	}
}

func TestTrainLinearRejectsBadInput(t *testing.T) {
	if _, err := TrainLinear(NewDataset(8), DefaultLinearConfig(1)); err == nil {
		t.Error("TrainLinear accepted an empty dataset")
	}
	d := linearDataset(1, 50, 8)
	if _, err := TrainLinear(d, LinearConfig{Epochs: 0, LearningRate: 0.1}); err == nil {
		t.Error("TrainLinear accepted zero epochs")
	}
}

func TestLinearBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		l := &Linear{W: make([]float64, rng.Intn(64)), B: rng.NormFloat64()}
		for i := range l.W {
			l.W[i] = rng.NormFloat64() * 3
		}
		if len(l.W) > 0 {
			l.W[0] = math.NaN() // bit-pattern survival, like forest probs
		}
		enc := l.AppendBinary(nil)
		got, n, err := DecodeLinearBinary(enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(enc) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, n, len(enc))
		}
		if !bytes.Equal(got.AppendBinary(nil), enc) {
			t.Fatalf("trial %d: re-encode differs", trial)
		}
	}
}

func TestLinearBinaryCorrupt(t *testing.T) {
	l := &Linear{W: []float64{1, -2, 3}, B: 0.5}
	enc := l.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeLinearBinary(enc[:cut]); !errors.Is(err, ErrCorruptLinear) {
			t.Fatalf("truncation to %d bytes: %v, want ErrCorruptLinear", cut, err)
		}
	}
	// A huge weight count must be rejected before allocation.
	huge := appendU32(nil, 1<<30)
	if _, _, err := DecodeLinearBinary(huge); !errors.Is(err, ErrCorruptLinear) {
		t.Errorf("huge count: %v, want ErrCorruptLinear", err)
	}
}

// TestLinearScoreIgnoresExtraBits: bits beyond the trained width do not
// perturb the score (defensive symmetry with LogReg.Score).
func TestLinearScoreIgnoresExtraBits(t *testing.T) {
	l := &Linear{W: []float64{1, 2}, B: 0}
	x := NewVector(130)
	x.Set(0)
	x.Set(129)
	if got := l.Score(x); got != 1 {
		t.Errorf("Score = %v, want 1", got)
	}
}
