package ml

import (
	"math/rand"

	"apichecker/internal/parallel"
)

// ForestConfig configures a random forest.
type ForestConfig struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	// MTry defaults to sqrt(NumFeatures) when zero.
	MTry int
	Seed int64
}

// RandomForest is bagged CART trees with per-split feature subsampling —
// the classifier APICHECKER deploys (§4.3: best precision, near-best
// recall, cheap training, good interpretability via Gini importance).
type RandomForest struct {
	cfg     ForestConfig
	trained bool
	trees   []*CART

	importance []float64 // summed Gini importance across trees
}

// NewRandomForest returns an untrained forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 80
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 16
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	return &RandomForest{cfg: cfg}
}

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "Random Forest" }

// Train implements Classifier. Trees are trained in parallel; tree seeds
// derive from the forest seed and the tree index, so results are
// independent of scheduling.
func (rf *RandomForest) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	mtry := rf.cfg.MTry
	if mtry <= 0 {
		mtry = defaultMTry(d.NumFeatures)
	}
	rf.trees = make([]*CART, rf.cfg.Trees)
	errs := make([]error, rf.cfg.Trees)
	fc := transposeDataset(d)

	parallel.Run(rf.cfg.Trees, 0, func(ti int) {
		tree := NewCART(CARTConfig{
			MaxDepth: rf.cfg.MaxDepth,
			MinLeaf:  rf.cfg.MinLeaf,
			MTry:     mtry,
			Seed:     rf.cfg.Seed + int64(ti)*0x9e3779b9,
		})
		rng := rand.New(newSplitMix(tree.cfg.Seed ^ 0x51ed))
		errs[ti] = tree.trainCols(d, fc, rng)
		rf.trees[ti] = tree
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	rf.importance = make([]float64, d.NumFeatures)
	for _, tree := range rf.trees {
		for f, v := range tree.Importance() {
			rf.importance[f] += v
		}
	}
	rf.trained = true
	return nil
}

// Score implements Scorer: mean leaf probability minus the 0.5 threshold.
func (rf *RandomForest) Score(x Vector) float64 {
	sum := 0.0
	for _, tree := range rf.trees {
		sum += tree.prob(x)
	}
	return sum/float64(len(rf.trees)) - 0.5
}

// Predict implements Classifier.
func (rf *RandomForest) Predict(x Vector) bool {
	if !rf.trained {
		return false
	}
	return rf.Score(x) > 0
}

// Importance returns normalized Gini importance per feature (sums to 1
// when any split happened). This is Fig. 13's ranking statistic.
func (rf *RandomForest) Importance() []float64 {
	out := make([]float64, len(rf.importance))
	total := 0.0
	for _, v := range rf.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for f, v := range rf.importance {
		out[f] = v / total
	}
	return out
}

// DefaultForestConfig is the tuned production forest configuration (§4.2:
// hyperparameters configured once from held-out data).
func DefaultForestConfig(seed int64) ForestConfig {
	return ForestConfig{Trees: 120, MaxDepth: 20, MinLeaf: 1, Seed: seed}
}
