package ml

import (
	"math/rand"

	"apichecker/internal/parallel"
)

// ForestConfig configures a random forest.
type ForestConfig struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	// MTry defaults to sqrt(NumFeatures) when zero.
	MTry int
	Seed int64
}

// RandomForest is bagged CART trees with per-split feature subsampling —
// the classifier APICHECKER deploys (§4.3: best precision, near-best
// recall, cheap training, good interpretability via Gini importance).
type RandomForest struct {
	cfg     ForestConfig
	trained bool
	trees   []*CART

	importance []float64 // summed Gini importance across trees
}

// NewRandomForest returns an untrained forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 80
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 16
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	return &RandomForest{cfg: cfg}
}

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "Random Forest" }

// Trained reports whether the forest has been trained (or decoded from a
// trained encoding).
func (rf *RandomForest) Trained() bool { return rf.trained }

// Train implements Classifier. Trees are trained in parallel; tree seeds
// derive from the forest seed and the tree index, so results are
// independent of scheduling.
func (rf *RandomForest) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	mtry := rf.cfg.MTry
	if mtry <= 0 {
		mtry = defaultMTry(d.NumFeatures)
	}
	rf.trees = make([]*CART, rf.cfg.Trees)
	errs := make([]error, rf.cfg.Trees)
	fc := transposeDataset(d)

	parallel.Run(rf.cfg.Trees, 0, func(ti int) {
		tree := NewCART(CARTConfig{
			MaxDepth: rf.cfg.MaxDepth,
			MinLeaf:  rf.cfg.MinLeaf,
			MTry:     mtry,
			Seed:     rf.cfg.Seed + int64(ti)*0x9e3779b9,
		})
		rng := rand.New(newSplitMix(tree.cfg.Seed ^ 0x51ed))
		errs[ti] = tree.trainCols(d, fc, rng)
		rf.trees[ti] = tree
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	rf.importance = make([]float64, d.NumFeatures)
	for _, tree := range rf.trees {
		for f, v := range tree.Importance() {
			rf.importance[f] += v
		}
	}
	rf.trained = true
	return nil
}

// Score implements Scorer: mean leaf probability minus the 0.5 threshold.
func (rf *RandomForest) Score(x Vector) float64 {
	sum := 0.0
	for _, tree := range rf.trees {
		sum += tree.prob(x)
	}
	return sum/float64(len(rf.trees)) - 0.5
}

// Predict implements Classifier.
func (rf *RandomForest) Predict(x Vector) bool {
	if !rf.trained {
		return false
	}
	return rf.Score(x) > 0
}

// scoreBatchChunk is the row-block size of batch inference: large enough
// that each tree's flat node slice is walked over many rows while hot in
// cache, small enough that chunks parallelize across cores.
const scoreBatchChunk = 256

// ScoreBatch implements BatchScorer: it scores a block of vectors into
// out (allocated when nil) and returns it. The walk is tree-major — outer
// loop over trees, inner loop over the block's rows — so each tree's flat
// preorder node slice stays cache-hot across the whole block instead of
// being re-fetched per row. Blocks beyond scoreBatchChunk rows are
// chunked and scored in parallel.
//
// Every output is bit-identical to Score on the same row: per-row sums
// accumulate in tree-index order and the final division matches Score's,
// so batch composition can never change a verdict.
func (rf *RandomForest) ScoreBatch(xs []Vector, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(xs))
	}
	if len(xs) == 0 {
		return out
	}
	nchunks := (len(xs) + scoreBatchChunk - 1) / scoreBatchChunk
	parallel.Run(nchunks, 0, func(ci int) {
		lo := ci * scoreBatchChunk
		hi := min(lo+scoreBatchChunk, len(xs))
		rows := xs[lo:hi]
		sums := out[lo:hi]
		for i := range sums {
			sums[i] = 0
		}
		for _, tree := range rf.trees {
			// Four rows walk each tree in lockstep (see probBatch4); the
			// remainder takes the scalar walk. Per-row sums still
			// accumulate in tree order, so totals match Score exactly.
			i := 0
			for ; i+4 <= len(rows); i += 4 {
				p0, p1, p2, p3 := tree.probBatch4(rows[i], rows[i+1], rows[i+2], rows[i+3])
				sums[i] += p0
				sums[i+1] += p1
				sums[i+2] += p2
				sums[i+3] += p3
			}
			for ; i < len(rows); i++ {
				sums[i] += tree.prob(rows[i])
			}
		}
		for i := range sums {
			sums[i] = sums[i]/float64(len(rf.trees)) - 0.5
		}
	})
	return out
}

// PredictBatch implements BatchClassifier; each element is bit-identical
// to Predict on the same row.
func (rf *RandomForest) PredictBatch(xs []Vector) []bool {
	out := make([]bool, len(xs))
	if !rf.trained {
		return out
	}
	scores := rf.ScoreBatch(xs, nil)
	for i, s := range scores {
		out[i] = s > 0
	}
	return out
}

// Importance returns normalized Gini importance per feature (sums to 1
// when any split happened). This is Fig. 13's ranking statistic.
func (rf *RandomForest) Importance() []float64 {
	out := make([]float64, len(rf.importance))
	total := 0.0
	for _, v := range rf.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for f, v := range rf.importance {
		out[f] = v / total
	}
	return out
}

// DefaultForestConfig is the tuned production forest configuration (§4.2:
// hyperparameters configured once from held-out data).
func DefaultForestConfig(seed int64) ForestConfig {
	return ForestConfig{Trees: 120, MaxDepth: 20, MinLeaf: 1, Seed: seed}
}
