package ml

import (
	"testing"
	"time"
)

// TestSVMScalesQuadratically demonstrates why Table 2's SVM training time
// dwarfs everything at market scale: kernel-SVM cost grows ~quadratically
// with the corpus while random-forest cost grows ~linearly. At 500K apps
// the paper measures ~27K minutes vs 29 minutes.
func TestSVMScalesQuadratically(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling probe in -short mode")
	}
	timeTrain := func(c Classifier, n int) time.Duration {
		d := syntheticDataset(n, 200, 5)
		start := time.Now()
		if err := c.Train(d); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Median of 3 to damp scheduler noise.
	med := func(f func() time.Duration) time.Duration {
		a, b, c := f(), f(), f()
		if a > b {
			a, b = b, a
		}
		if b > c {
			b = c
		}
		if a > b {
			b = a
		}
		return b
	}

	svmSmall := med(func() time.Duration { return timeTrain(NewSVM(SVMConfig{Epochs: 8, Gamma: 0.05, Seed: 1}), 400) })
	svmBig := med(func() time.Duration { return timeTrain(NewSVM(SVMConfig{Epochs: 8, Gamma: 0.05, Seed: 1}), 1600) })
	rfSmall := med(func() time.Duration {
		return timeTrain(NewRandomForest(ForestConfig{Trees: 40, MaxDepth: 12, Seed: 1}), 400)
	})
	rfBig := med(func() time.Duration {
		return timeTrain(NewRandomForest(ForestConfig{Trees: 40, MaxDepth: 12, Seed: 1}), 1600)
	})

	svmGrowth := float64(svmBig) / float64(svmSmall)
	rfGrowth := float64(rfBig) / float64(rfSmall)
	t.Logf("4x corpus: SVM grew %.1fx (%v -> %v), RF grew %.1fx (%v -> %v)",
		svmGrowth, svmSmall, svmBig, rfGrowth, rfSmall, rfBig)
	// 4x data: quadratic ⇒ ~16x; allow slack but demand clearly
	// superlinear SVM growth and clearly milder RF growth.
	if svmGrowth < 6 {
		t.Errorf("SVM growth %.1fx not clearly quadratic", svmGrowth)
	}
	if rfGrowth > svmGrowth/1.5 {
		t.Errorf("RF growth %.1fx not clearly milder than SVM %.1fx", rfGrowth, svmGrowth)
	}
}
