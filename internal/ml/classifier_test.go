package ml

import (
	"math/rand"
	"testing"
)

// syntheticDataset builds a learnable problem: 20 signal features that
// malicious examples carry often, plus label-independent noise.
func syntheticDataset(n, features int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset(features)
	for i := 0; i < n; i++ {
		y := rng.Float64() < 0.3
		v := NewVector(features)
		for f := 0; f < 20 && f < features; f++ {
			p := 0.06
			if y {
				p = 0.55
			}
			if rng.Float64() < p {
				v.Set(f)
			}
		}
		for f := 20; f < features; f++ {
			if rng.Float64() < 0.08 {
				v.Set(f)
			}
		}
		_ = d.Add(v, y)
	}
	return d
}

func TestAllClassifiersLearnSignal(t *testing.T) {
	full := syntheticDataset(900, 120, 7)
	train, test := full.Split(0.75, 3)
	for _, kind := range AllModelKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c := NewClassifier(kind, 11)
			if c.Name() == "" {
				t.Error("empty model name")
			}
			m, _, _, err := TrainEval(c, train, test)
			if err != nil {
				t.Fatal(err)
			}
			if m.F1() < 0.6 {
				t.Errorf("%s F1 = %.3f (%v), want > 0.6", kind, m.F1(), m)
			}
		})
	}
}

func TestClassifiersDeterministic(t *testing.T) {
	d := syntheticDataset(400, 80, 5)
	train, test := d.Split(0.8, 1)
	for _, kind := range AllModelKinds {
		a := NewClassifier(kind, 9)
		b := NewClassifier(kind, 9)
		ma, _, _, err := TrainEval(a, train, test)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		mb, _, _, err := TrainEval(b, train, test)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if ma != mb {
			t.Errorf("%v not deterministic: %v vs %v", kind, ma, mb)
		}
	}
}

func TestPredictBeforeTrainIsSafe(t *testing.T) {
	x := NewVector(16)
	for _, kind := range AllModelKinds {
		c := NewClassifier(kind, 1)
		if c.Predict(x) {
			t.Errorf("%v predicts positive before training", kind)
		}
	}
}

func TestTrainRejectsDegenerateSets(t *testing.T) {
	empty := NewDataset(8)
	oneClass := NewDataset(8)
	for i := 0; i < 10; i++ {
		_ = oneClass.Add(NewVector(8), false)
	}
	for _, kind := range AllModelKinds {
		if err := NewClassifier(kind, 1).Train(empty); err == nil {
			t.Errorf("%v trained on empty set", kind)
		}
		if err := NewClassifier(kind, 1).Train(oneClass); err == nil {
			t.Errorf("%v trained on single-class set", kind)
		}
	}
}

func TestScorersAgreeWithPredict(t *testing.T) {
	d := syntheticDataset(300, 60, 2)
	train, test := d.Split(0.8, 4)
	for _, kind := range AllModelKinds {
		c := NewClassifier(kind, 3)
		if _, _, _, err := TrainEval(c, train, test); err != nil {
			t.Fatal(err)
		}
		s, ok := c.(Scorer)
		if !ok {
			if kind != ModelKNN {
				t.Errorf("%v does not expose scores", kind)
			}
			continue
		}
		for i := range test.Examples {
			x := test.Examples[i].X
			if (s.Score(x) > 0) != c.Predict(x) {
				t.Errorf("%v: Score and Predict disagree", kind)
				break
			}
		}
	}
}

func TestForestImportanceFindsSignal(t *testing.T) {
	d := syntheticDataset(800, 100, 13)
	rf := NewRandomForest(ForestConfig{Trees: 60, MaxDepth: 12, Seed: 2})
	if err := rf.Train(d); err != nil {
		t.Fatal(err)
	}
	imp := rf.Importance()
	if len(imp) != 100 {
		t.Fatalf("importance length %d", len(imp))
	}
	sum := 0.0
	signalMass := 0.0
	for f, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance at %d", f)
		}
		sum += v
		if f < 20 {
			signalMass += v
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sums to %f", sum)
	}
	if signalMass < 0.5 {
		t.Errorf("signal features carry %.2f of importance, want > 0.5", signalMass)
	}
}

func TestCrossValidate(t *testing.T) {
	d := syntheticDataset(500, 60, 21)
	res, err := CrossValidate(func() Classifier { return NewNaiveBayes() }, d, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "Naive Bayes" || res.Folds != 10 {
		t.Errorf("res = %+v", res)
	}
	total := res.Confusion.TP + res.Confusion.FP + res.Confusion.TN + res.Confusion.FN
	if total+res.DeduplicatedTest != d.Len() {
		t.Errorf("CV covered %d + %d dedup, want %d", total, res.DeduplicatedTest, d.Len())
	}
	if res.TrainTime <= 0 {
		t.Error("train time not recorded")
	}
	if res.Confusion.F1() < 0.5 {
		t.Errorf("CV F1 = %.3f", res.Confusion.F1())
	}
	if _, err := CrossValidate(func() Classifier { return NewNaiveBayes() }, syntheticDataset(10, 8, 1), 10, 1); err == nil {
		t.Error("CV accepted tiny dataset")
	}
}

func TestKNNTieAndDistanceOrdering(t *testing.T) {
	d := NewDataset(8)
	mk := func(bits ...int) Vector {
		v := NewVector(8)
		for _, b := range bits {
			v.Set(b)
		}
		return v
	}
	_ = d.Add(mk(0, 1, 2), true)
	_ = d.Add(mk(0, 1, 3), true)
	_ = d.Add(mk(5, 6, 7), false)
	_ = d.Add(mk(5, 6), false)
	_ = d.Add(mk(7), false)
	k := NewKNN(KNNConfig{K: 3})
	if err := k.Train(d); err != nil {
		t.Fatal(err)
	}
	if !k.Predict(mk(0, 1)) {
		t.Error("query near positives predicted negative")
	}
	if k.Predict(mk(5, 7)) {
		t.Error("query near negatives predicted positive")
	}
}
