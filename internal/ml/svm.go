package ml

import (
	"math"
	"math/rand"
	"sort"
)

// SVMConfig configures the kernel SVM.
type SVMConfig struct {
	// C caps the dual coefficients (soft margin).
	C float64
	// Gamma is the RBF bandwidth over Hamming distance. Zero selects an
	// adaptive bandwidth of 1/median-pairwise-Hamming estimated from
	// the training set, which keeps the kernel informative across
	// feature-space widths (a fixed gamma underflows to the identity
	// kernel on wide sparse vectors).
	Gamma float64
	// Epochs of dual coordinate updates over the training set.
	Epochs int
	Seed   int64

	// CacheLimit is the maximum training-set size for which the full
	// kernel matrix is cached (float32). Defaults to 4096.
	CacheLimit int
}

// SVM is a soft-margin kernel SVM with an RBF kernel over Hamming distance
// (exp(-gamma * hamming(x, y)), a valid exponential kernel for binary
// vectors), trained by kernel-adatron style dual coordinate ascent.
//
// Training cost is quadratic in the number of examples — the same reason
// Table 2's SVM row dwarfs every other training time.
type SVM struct {
	cfg     SVMConfig
	trained bool
	gamma   float64 // resolved bandwidth (cfg.Gamma or adaptive)

	support []Example
	alphaY  []float64 // alpha_i * y_i for the retained support vectors
	bias    float64
}

// NewSVM returns an untrained SVM.
func NewSVM(cfg SVMConfig) *SVM {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 12
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 4096
	}
	return &SVM{cfg: cfg}
}

// Name implements Classifier.
func (s *SVM) Name() string { return "SVM" }

// kernel evaluates the RBF-over-Hamming kernel.
func (s *SVM) kernel(a, b Vector) float64 {
	return math.Exp(-s.gamma * float64(a.Hamming(b)))
}

// resolveGamma picks the bandwidth: configured, or adaptive from the
// median pairwise Hamming distance of a training sample.
func (s *SVM) resolveGamma(d *Dataset) {
	if s.cfg.Gamma > 0 {
		s.gamma = s.cfg.Gamma
		return
	}
	sample := d.Len()
	if sample > 128 {
		sample = 128
	}
	var dists []int
	for i := 0; i < sample; i++ {
		for j := i + 1; j < sample; j++ {
			dists = append(dists, d.Examples[i].X.Hamming(d.Examples[j].X))
		}
	}
	median := 1
	if len(dists) > 0 {
		sort.Ints(dists)
		median = dists[len(dists)/2]
		if median < 1 {
			median = 1
		}
	}
	s.gamma = 1 / float64(median)
}

// Train implements Classifier.
func (s *SVM) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	s.resolveGamma(d)
	n := d.Len()
	y := make([]float64, n)
	for i := range y {
		if d.Examples[i].Y {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	// Kernel cache (float32) when the problem fits.
	var cache []float32
	if n <= s.cfg.CacheLimit {
		cache = make([]float32, n*n)
		for i := 0; i < n; i++ {
			cache[i*n+i] = 1
			for j := i + 1; j < n; j++ {
				k := float32(s.kernel(d.Examples[i].X, d.Examples[j].X))
				cache[i*n+j] = k
				cache[j*n+i] = k
			}
		}
	}
	kval := func(i, j int) float64 {
		if cache != nil {
			return float64(cache[i*n+j])
		}
		return s.kernel(d.Examples[i].X, d.Examples[j].X)
	}

	alpha := make([]float64, n)
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := 1.0
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			f := 0.0
			for j := 0; j < n; j++ {
				if alpha[j] != 0 {
					f += alpha[j] * y[j] * kval(i, j)
				}
			}
			// Adatron update: push margin toward 1.
			alpha[i] += lr * (1 - y[i]*f)
			if alpha[i] < 0 {
				alpha[i] = 0
			}
			if alpha[i] > s.cfg.C {
				alpha[i] = s.cfg.C
			}
		}
		lr *= 0.9
	}

	// Bias: average margin error over margin support vectors.
	biasSum, biasN := 0.0, 0
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 && alpha[i] < s.cfg.C-1e-9 {
			f := 0.0
			for j := 0; j < n; j++ {
				if alpha[j] != 0 {
					f += alpha[j] * y[j] * kval(i, j)
				}
			}
			biasSum += y[i] - f
			biasN++
		}
	}
	if biasN > 0 {
		s.bias = biasSum / float64(biasN)
	}

	s.support = s.support[:0]
	s.alphaY = s.alphaY[:0]
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			s.support = append(s.support, d.Examples[i])
			s.alphaY = append(s.alphaY, alpha[i]*y[i])
		}
	}
	s.trained = true
	return nil
}

// Score implements Scorer (signed margin).
func (s *SVM) Score(x Vector) float64 {
	f := s.bias
	for i := range s.support {
		f += s.alphaY[i] * s.kernel(x, s.support[i].X)
	}
	return f
}

// Predict implements Classifier.
func (s *SVM) Predict(x Vector) bool {
	if !s.trained {
		return false
	}
	return s.Score(x) > 0
}
