package ml

import (
	"fmt"
	"sort"
)

// scoresOf scores every dataset row, through the batch fast path when the
// scorer has one (row-identical to per-row Score by contract).
func scoresOf(s Scorer, d *Dataset) []float64 {
	if bs, ok := s.(BatchScorer); ok {
		return bs.ScoreBatch(datasetVectors(d), nil)
	}
	out := make([]float64, len(d.Examples))
	for i := range d.Examples {
		out[i] = s.Score(d.Examples[i].X)
	}
	return out
}

// ROCPoint is one operating point of a scored classifier.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // recall
	FPR       float64
}

// ROC computes the ROC curve of a Scorer over a dataset, sorted by
// ascending FPR. The curve always includes the (0,0) and (1,1) corners.
func ROC(s Scorer, d *Dataset) []ROCPoint {
	type scored struct {
		score float64
		y     bool
	}
	items := make([]scored, d.Len())
	scores := scoresOf(s, d)
	pos, neg := 0, 0
	for i := range d.Examples {
		items[i] = scored{scores[i], d.Examples[i].Y}
		if d.Examples[i].Y {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	var curve []ROCPoint
	tp, fp := 0, 0
	curve = append(curve, ROCPoint{Threshold: items[0].score + 1, TPR: 0, FPR: 0})
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].y {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			Threshold: items[i].score,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
		i = j
	}
	return curve
}

// AUC computes the area under an ROC curve by trapezoidal integration.
func AUC(curve []ROCPoint) float64 {
	if len(curve) < 2 {
		return 0
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		area += (curve[i].FPR - curve[i-1].FPR) * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// AUCScores computes ROC AUC directly from per-example scores and labels
// (the shadow-evaluation path, where scores come out of vet verdicts
// rather than a Dataset). It is the rank (Mann-Whitney U) statistic with
// the standard half-credit tie correction, equivalent to trapezoidal
// integration over the tied-score ROC. Returns 0 when either class is
// absent.
func AUCScores(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	pos, neg := 0, 0
	for _, y := range labels {
		if y {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0
	}

	// Sum over positives of (negatives scored strictly below + half the
	// negatives tied with it), accumulated per tie group.
	u := 0.0
	negBelow := 0
	for i := 0; i < len(idx); {
		j := i
		tiePos, tieNeg := 0, 0
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tiePos++
			} else {
				tieNeg++
			}
			j++
		}
		u += float64(tiePos) * (float64(negBelow) + float64(tieNeg)/2)
		negBelow += tieNeg
		i = j
	}
	return u / (float64(pos) * float64(neg))
}

// ThresholdForPrecision returns the lowest score threshold achieving at
// least the target precision on the calibration set, maximizing recall
// under that constraint — the §5.2 policy of actively avoiding false
// positives while conceding some false negatives. It fails when no
// threshold reaches the target.
func ThresholdForPrecision(s Scorer, d *Dataset, target float64) (float64, error) {
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("ml: target precision %f out of (0,1]", target)
	}
	type scored struct {
		score float64
		y     bool
	}
	items := make([]scored, d.Len())
	scores := scoresOf(s, d)
	for i := range d.Examples {
		items[i] = scored{scores[i], d.Examples[i].Y}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	best := 0.0
	found := false
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].y {
				tp++
			} else {
				fp++
			}
			j++
		}
		if tp > 0 && float64(tp)/float64(tp+fp) >= target {
			best = items[i].score
			found = true
		}
		i = j
	}
	if !found {
		return 0, fmt.Errorf("ml: no threshold reaches precision %.3f", target)
	}
	return best, nil
}

// EvaluateAt evaluates a scorer at an explicit decision threshold
// (score >= threshold ⇒ malicious).
func EvaluateAt(s Scorer, d *Dataset, threshold float64) Confusion {
	var m Confusion
	scores := scoresOf(s, d)
	for i := range d.Examples {
		m.Observe(scores[i] >= threshold, d.Examples[i].Y)
	}
	return m
}
