package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob serialization for trained forests (model distribution, §5.4). Trees
// are flattened to index-linked node arrays in preorder.

type nodeWire struct {
	Feature     int32
	Left, Right int32 // node indexes; -1 for none
	Prob        float64
}

type treeWire struct {
	Nodes []nodeWire
}

type forestWire struct {
	Cfg        ForestConfig
	Importance []float64
	Trees      []treeWire
}

func flatten(root *treeNode) treeWire {
	var w treeWire
	var walk func(n *treeNode) int32
	walk = func(n *treeNode) int32 {
		idx := int32(len(w.Nodes))
		w.Nodes = append(w.Nodes, nodeWire{Feature: int32(n.feature), Left: -1, Right: -1, Prob: n.prob})
		if n.feature >= 0 {
			w.Nodes[idx].Left = walk(n.left)
			w.Nodes[idx].Right = walk(n.right)
		}
		return idx
	}
	if root != nil {
		walk(root)
	}
	return w
}

func unflatten(w treeWire) (*treeNode, error) {
	if len(w.Nodes) == 0 {
		return nil, fmt.Errorf("ml: decode forest: empty tree")
	}
	nodes := make([]treeNode, len(w.Nodes))
	for i, nw := range w.Nodes {
		nodes[i] = treeNode{feature: int(nw.Feature), prob: nw.Prob}
		if nw.Feature >= 0 {
			if nw.Left < 0 || int(nw.Left) >= len(nodes) || nw.Right < 0 || int(nw.Right) >= len(nodes) {
				return nil, fmt.Errorf("ml: decode forest: node %d has invalid children", i)
			}
			nodes[i].left = &nodes[nw.Left]
			nodes[i].right = &nodes[nw.Right]
		}
	}
	return &nodes[0], nil
}

// GobEncode implements gob.GobEncoder.
func (rf *RandomForest) GobEncode() ([]byte, error) {
	if !rf.trained {
		return nil, fmt.Errorf("ml: cannot encode untrained forest")
	}
	w := forestWire{Cfg: rf.cfg, Importance: rf.importance}
	for _, tree := range rf.trees {
		w.Trees = append(w.Trees, flatten(tree.root))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (rf *RandomForest) GobDecode(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Trees) == 0 {
		return fmt.Errorf("ml: decode forest: no trees")
	}
	rf.cfg = w.Cfg
	rf.importance = w.Importance
	rf.trees = rf.trees[:0]
	for _, tw := range w.Trees {
		root, err := unflatten(tw)
		if err != nil {
			return err
		}
		rf.trees = append(rf.trees, &CART{cfg: CARTConfig{}, trained: true, root: root})
	}
	rf.trained = true
	return nil
}
