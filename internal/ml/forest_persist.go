package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob serialization for trained forests (model distribution, §5.4). Trees
// are flattened to index-linked node arrays in preorder.

type nodeWire struct {
	Feature     int32
	Left, Right int32 // node indexes; -1 for none
	Prob        float64
}

type treeWire struct {
	Nodes []nodeWire
}

type forestWire struct {
	Cfg        ForestConfig
	Importance []float64
	Trees      []treeWire
}

func flatten(t *CART) treeWire {
	// The in-memory tree is already a preorder index-linked array; the
	// wire form is a field-for-field copy.
	w := treeWire{Nodes: make([]nodeWire, len(t.nodes))}
	for i, n := range t.nodes {
		w.Nodes[i] = nodeWire{Feature: n.feature, Left: n.left, Right: n.right, Prob: n.prob}
	}
	return w
}

func unflatten(w treeWire) ([]treeNode, error) {
	if len(w.Nodes) == 0 {
		return nil, fmt.Errorf("ml: decode forest: empty tree")
	}
	nodes := make([]treeNode, len(w.Nodes))
	for i, nw := range w.Nodes {
		nodes[i] = treeNode{feature: nw.Feature, left: -1, right: -1, prob: nw.Prob}
		if nw.Feature >= 0 {
			if nw.Left < 0 || int(nw.Left) >= len(nodes) || nw.Right < 0 || int(nw.Right) >= len(nodes) {
				return nil, fmt.Errorf("ml: decode forest: node %d has invalid children", i)
			}
			nodes[i].left = nw.Left
			nodes[i].right = nw.Right
		}
	}
	return nodes, nil
}

// GobEncode implements gob.GobEncoder.
func (rf *RandomForest) GobEncode() ([]byte, error) {
	if !rf.trained {
		return nil, fmt.Errorf("ml: cannot encode untrained forest")
	}
	w := forestWire{Cfg: rf.cfg, Importance: rf.importance}
	for _, tree := range rf.trees {
		w.Trees = append(w.Trees, flatten(tree))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (rf *RandomForest) GobDecode(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Trees) == 0 {
		return fmt.Errorf("ml: decode forest: no trees")
	}
	rf.cfg = w.Cfg
	rf.importance = w.Importance
	rf.trees = rf.trees[:0]
	for _, tw := range w.Trees {
		nodes, err := unflatten(tw)
		if err != nil {
			return err
		}
		t := &CART{cfg: CARTConfig{}, trained: true, nodes: nodes}
		t.buildBatch()
		rf.trees = append(rf.trees, t)
	}
	rf.trained = true
	return nil
}
