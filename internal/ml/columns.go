package ml

import "math/bits"

// featureColumns is a column-major view of a dataset's binary features:
// one bitset over examples per feature, plus the label bitset. Tree
// growth evaluates every candidate split by scanning a node's example
// indices against a single column, so the whole working set for one
// feature is ceil(n/64) words instead of one Vector load per example.
// The counts are the same integers row-major evaluation produces, so
// split decisions (and therefore trees) are unchanged.
type featureColumns struct {
	bits [][]uint64 // [feature] -> bitset over example indices
	y    []uint64   // label bitset over example indices
}

// transposeDataset builds the column view. All columns share one backing
// array (pointer-free, a single allocation).
func transposeDataset(d *Dataset) *featureColumns {
	n := len(d.Examples)
	words := (n + 63) / 64
	fc := &featureColumns{
		bits: make([][]uint64, d.NumFeatures),
		y:    make([]uint64, words),
	}
	backing := make([]uint64, d.NumFeatures*words)
	for f := range fc.bits {
		fc.bits[f] = backing[f*words : (f+1)*words]
	}
	for i := range d.Examples {
		mask := uint64(1) << (uint(i) & 63)
		if d.Examples[i].Y {
			fc.y[i>>6] |= mask
		}
		for w, word := range d.Examples[i].X {
			base := w * 64
			for word != 0 {
				f := base + bits.TrailingZeros64(word)
				if f < d.NumFeatures {
					fc.bits[f][i>>6] |= mask
				}
				word &= word - 1
			}
		}
	}
	return fc
}

// test reports whether example i has the bit set in column col.
func colTest(col []uint64, i int) bool {
	return col[i>>6]&(1<<(uint(i)&63)) != 0
}
