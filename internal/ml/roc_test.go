package ml

import (
	"math"
	"testing"
)

func trainedScorer(t *testing.T) (Scorer, *Dataset) {
	t.Helper()
	full := syntheticDataset(800, 100, 17)
	train, test := full.Split(0.7, 3)
	rf := NewRandomForest(DefaultForestConfig(5))
	if err := rf.Train(train); err != nil {
		t.Fatal(err)
	}
	return rf, test
}

func TestROCAndAUC(t *testing.T) {
	s, test := trainedScorer(t)
	curve := ROC(s, test)
	if len(curve) < 3 {
		t.Fatalf("curve points = %d", len(curve))
	}
	// Monotone in both axes, ends at (1,1).
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatal("ROC not monotone")
		}
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve end = %+v", last)
	}
	auc := AUC(curve)
	if auc < 0.9 || auc > 1.0000001 {
		t.Errorf("AUC = %.3f, want near 1 on a learnable problem", auc)
	}
}

func TestAUCKnownValues(t *testing.T) {
	// Perfect ranking.
	perfect := []ROCPoint{{TPR: 0, FPR: 0}, {TPR: 1, FPR: 0}, {TPR: 1, FPR: 1}}
	if got := AUC(perfect); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AUC = %f", got)
	}
	// Chance diagonal.
	chance := []ROCPoint{{TPR: 0, FPR: 0}, {TPR: 1, FPR: 1}}
	if got := AUC(chance); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("chance AUC = %f", got)
	}
	if AUC(nil) != 0 {
		t.Error("empty AUC")
	}
}

func TestROCDegenerate(t *testing.T) {
	d := NewDataset(8)
	for i := 0; i < 5; i++ {
		_ = d.Add(NewVector(8), false)
	}
	if ROC(NewNaiveBayes(), d) != nil {
		t.Error("single-class ROC not nil")
	}
}

func TestThresholdForPrecision(t *testing.T) {
	s, test := trainedScorer(t)
	// Default threshold as reference.
	base := EvaluateAt(s, test, 0)

	thr, err := ThresholdForPrecision(s, test, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	strict := EvaluateAt(s, test, thr)
	if strict.Precision() < 0.99 {
		t.Errorf("calibrated precision = %.3f", strict.Precision())
	}
	// The FP-avoidance policy trades recall for precision.
	if strict.Precision() < base.Precision()-1e-9 {
		t.Errorf("calibrated precision %.3f below default %.3f", strict.Precision(), base.Precision())
	}
	if _, err := ThresholdForPrecision(s, test, 1.5); err == nil {
		t.Error("absurd target accepted")
	}
}

func TestThresholdUnreachable(t *testing.T) {
	// A scorer that ranks everything identically cannot reach high
	// precision when negatives exist at the top score.
	d := NewDataset(4)
	v1 := NewVector(4)
	v1.Set(0)
	_ = d.Add(v1, true)
	_ = d.Add(v1.Clone(), false)
	nb := NewNaiveBayes()
	if err := nb.Train(d); err != nil {
		t.Fatal(err)
	}
	if _, err := ThresholdForPrecision(nb, d, 0.999); err == nil {
		t.Error("unreachable precision target accepted")
	}
}
