package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Deterministic binary serialization for trained forests — the model-
// artifact path (monthly evolution persists every promoted generation,
// content-addressed by digest, so the encoding must be byte-stable for
// identical models). Unlike the gob form used for peer-market
// distribution, this format is hand-laid-out little-endian with no type
// descriptors: encoding the same forest twice yields identical bytes, and
// decode→encode round-trips to the same bytes.
//
// Layout (all integers little-endian):
//
//	u32  tree count
//	cfg: i64 Trees, MaxDepth, MinLeaf, MTry, Seed
//	u32  importance length, then that many f64 bit patterns
//	per tree: u32 node count, then per node i32 feature, i32 left,
//	          i32 right, f64 prob bits
//
// Decoding is strictly bounds-checked: corrupt or truncated payloads
// return an error wrapping ErrCorruptForest — never a panic — and child
// indexes are validated exactly as the gob path validates them.

// ErrCorruptForest marks a binary forest payload that fails structural
// validation (truncation, impossible counts, invalid child links).
var ErrCorruptForest = errors.New("ml: corrupt forest encoding")

// maxReasonableCount bounds decoded element counts so a corrupt length
// prefix cannot trigger a huge allocation before the bounds check fails.
const maxReasonableCount = 1 << 26

// AppendBinary appends the forest's deterministic binary encoding to buf
// and returns the extended slice.
func (rf *RandomForest) AppendBinary(buf []byte) ([]byte, error) {
	if !rf.trained {
		return nil, fmt.Errorf("ml: cannot encode untrained forest")
	}
	buf = appendU32(buf, uint32(len(rf.trees)))
	for _, v := range []int64{int64(rf.cfg.Trees), int64(rf.cfg.MaxDepth),
		int64(rf.cfg.MinLeaf), int64(rf.cfg.MTry), rf.cfg.Seed} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = appendU32(buf, uint32(len(rf.importance)))
	for _, v := range rf.importance {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, t := range rf.trees {
		buf = appendU32(buf, uint32(len(t.nodes)))
		for _, n := range t.nodes {
			buf = appendU32(buf, uint32(n.feature))
			buf = appendU32(buf, uint32(n.left))
			buf = appendU32(buf, uint32(n.right))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.prob))
		}
	}
	return buf, nil
}

// DecodeForestBinary decodes a forest encoded by AppendBinary from the
// front of data, returning the forest and the number of bytes consumed.
// Failures wrap ErrCorruptForest and never panic.
func DecodeForestBinary(data []byte) (*RandomForest, int, error) {
	r := binReader{data: data}
	nTrees, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if nTrees == 0 || nTrees > maxReasonableCount {
		return nil, 0, fmt.Errorf("%w: %d trees", ErrCorruptForest, nTrees)
	}
	rf := &RandomForest{}
	var cfg [5]int64
	for i := range cfg {
		v, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		cfg[i] = int64(v)
	}
	rf.cfg = ForestConfig{Trees: int(cfg[0]), MaxDepth: int(cfg[1]),
		MinLeaf: int(cfg[2]), MTry: int(cfg[3]), Seed: cfg[4]}
	nImp, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if nImp > maxReasonableCount {
		return nil, 0, fmt.Errorf("%w: %d importance entries", ErrCorruptForest, nImp)
	}
	rf.importance = make([]float64, nImp)
	for i := range rf.importance {
		bits, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		rf.importance[i] = math.Float64frombits(bits)
	}
	rf.trees = make([]*CART, 0, nTrees)
	for ti := uint32(0); ti < nTrees; ti++ {
		nNodes, err := r.u32()
		if err != nil {
			return nil, 0, err
		}
		if nNodes == 0 || nNodes > maxReasonableCount {
			return nil, 0, fmt.Errorf("%w: tree %d has %d nodes", ErrCorruptForest, ti, nNodes)
		}
		nodes := make([]treeNode, nNodes)
		for i := range nodes {
			f, err1 := r.u32()
			l, err2 := r.u32()
			rt, err3 := r.u32()
			pb, err4 := r.u64()
			if err := errors.Join(err1, err2, err3, err4); err != nil {
				return nil, 0, err
			}
			n := treeNode{feature: int32(f), left: -1, right: -1, prob: math.Float64frombits(pb)}
			if n.feature >= 0 {
				left, right := int32(l), int32(rt)
				if left < 0 || int(left) >= len(nodes) || right < 0 || int(right) >= len(nodes) {
					return nil, 0, fmt.Errorf("%w: tree %d node %d has invalid children",
						ErrCorruptForest, ti, i)
				}
				n.left, n.right = left, right
			}
			nodes[i] = n
		}
		t := &CART{cfg: CARTConfig{}, trained: true, nodes: nodes}
		t.buildBatch()
		rf.trees = append(rf.trees, t)
	}
	rf.trained = true
	return rf, r.off, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// binReader is a bounds-checked little-endian cursor; every read past the
// end reports truncation through ErrCorruptForest.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrCorruptForest, r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrCorruptForest, r.off)
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}
