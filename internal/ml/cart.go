package ml

import (
	"math"
	"math/rand"
	"sync"
)

// CARTConfig configures a single classification tree.
type CARTConfig struct {
	MaxDepth int
	MinLeaf  int
	// MTry, when positive, restricts each split to a random feature
	// subset of that size (used by random forests). Zero means all
	// features are candidates.
	MTry int
	Seed int64
}

// CART is a classification tree splitting on binary features by Gini
// impurity (Breiman et al., the paper's [8]).
type CART struct {
	cfg     CARTConfig
	trained bool
	// nodes is the tree in preorder (root at index 0), children linked by
	// index. One pointer-free slice per tree keeps training allocation
	// flat and gives the garbage collector nothing to trace in a trained
	// forest — which matters once models and cached corpus runs are
	// retained across a whole simulated year.
	nodes []treeNode
	// bnodes is the derived batch-inference layout over the same indices
	// (see buildBatch); depth is the longest root-to-leaf edge count.
	bnodes []batchNode
	depth  int
	// importance accumulates per-feature Gini importance (impurity
	// decrease weighted by node size), populated during Train.
	importance []float64
}

type treeNode struct {
	feature     int32   // -1 for leaves
	left, right int32   // node indexes; -1 for none
	prob        float64 // P(malicious) at leaf
}

// batchNode mirrors treeNode for the lockstep batch walk: leaves self-loop
// (left == right == own index) and test word 0 against an empty mask, so
// one step is a plain masked load plus a conditional index select — no
// leaf branch, which lets the compiler keep the walk branch-free and
// several rows in flight. The feature bit position is pre-split into the
// vector word index and bit mask so the walk does no shifts.
type batchNode struct {
	word        int32 // feature / 64
	left, right int32
	mask        uint64 // 1 << (feature % 64); 0 for leaves
	prob        float64
}

// NewCART returns an untrained tree.
func NewCART(cfg CARTConfig) *CART {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 14
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	return &CART{cfg: cfg}
}

// Name implements Classifier.
func (t *CART) Name() string { return "CART" }

// Importance returns per-feature Gini importance (unnormalized).
func (t *CART) Importance() []float64 { return t.importance }

// Train implements Classifier.
func (t *CART) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	return t.train(d, transposeDataset(d), rand.New(rand.NewSource(t.cfg.Seed)), false)
}

// TrainBootstrap trains on a bootstrap sample drawn with rng (random
// forest bagging).
func (t *CART) TrainBootstrap(d *Dataset, rng *rand.Rand) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	return t.train(d, transposeDataset(d), rng, true)
}

// trainCols is TrainBootstrap against a prebuilt column view; the forest
// transposes the dataset once and shares it across all trees.
func (t *CART) trainCols(d *Dataset, fc *featureColumns, rng *rand.Rand) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	return t.train(d, fc, rng, true)
}

func (t *CART) train(d *Dataset, fc *featureColumns, rng *rand.Rand, bootstrap bool) error {
	g := growers.Get().(*grower)
	g.reset(&t.cfg, fc, d.NumFeatures, d.Len())
	// Examples are held as label-partitioned lists of DISTINCT indices
	// plus a per-example multiplicity (the bootstrap draw count): split
	// counting needs one column test per distinct element, and a 600-draw
	// bootstrap has only ~63% distinct members. Weighted counts equal the
	// duplicate-expanded counts exactly, and only counts feed the split
	// math, so the grown tree is identical to one grown over the
	// duplicate-expanded list.
	posW := 0
	if bootstrap {
		for i := 0; i < d.Len(); i++ {
			j := rng.Intn(d.Len())
			p := colTest(fc.y, j)
			if g.wgt[j] == 0 {
				if p {
					g.pos = append(g.pos, j)
				} else {
					g.neg = append(g.neg, j)
				}
			}
			g.wgt[j]++
			if p {
				posW++
			}
		}
	} else {
		for i := 0; i < d.Len(); i++ {
			g.wgt[i] = 1
			if colTest(fc.y, i) {
				g.pos = append(g.pos, i)
				posW++
			} else {
				g.neg = append(g.neg, i)
			}
		}
	}
	t.importance = make([]float64, d.NumFeatures)
	g.importance = t.importance
	g.grow(g.pos, g.neg, posW, d.Len(), 0, rng)
	t.nodes = append([]treeNode(nil), g.nodes...)
	g.cfg, g.fc, g.importance = nil, nil, nil
	growers.Put(g)
	t.buildBatch()
	t.trained = true
	return nil
}

// buildBatch derives the batch-inference layout from the canonical
// preorder nodes: identical indices and probabilities, but leaves
// self-loop on feature 0 so a lockstep walk needs no termination test.
// It also records the tree depth — the step count after which every row
// is guaranteed to sit on its leaf.
func (t *CART) buildBatch() {
	t.bnodes = make([]batchNode, len(t.nodes))
	for i, n := range t.nodes {
		if n.feature < 0 {
			t.bnodes[i] = batchNode{word: 0, mask: 0, left: int32(i), right: int32(i), prob: n.prob}
		} else {
			t.bnodes[i] = batchNode{
				word: n.feature / 64,
				mask: 1 << (uint(n.feature) % 64),
				left: n.left, right: n.right, prob: n.prob,
			}
		}
	}
	t.depth = nodeDepth(t.nodes, 0)
}

// nodeDepth is the edge count of the deepest leaf under node i.
func nodeDepth(nodes []treeNode, i int32) int {
	n := nodes[i]
	if n.feature < 0 {
		return 0
	}
	return 1 + max(nodeDepth(nodes, n.left), nodeDepth(nodes, n.right))
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// grower carries one tree's growth state: the shared column view, the
// importance accumulator, and a scratch buffer so node partitions reuse
// the parent's index storage instead of allocating per node.
type grower struct {
	cfg         *CARTConfig
	fc          *featureColumns
	importance  []float64
	numFeatures int
	pos, neg    []int   // distinct example indices, by label
	wgt         []int32 // per-example bootstrap multiplicity
	scratch     []int
	identity    []int // all-features candidate list
	draws       []int // MTry candidate buffer
	nodes       []treeNode
}

// growers recycles per-tree growth state; a forest trains 120 trees in
// parallel and the index/arena buffers dominate its allocations.
var growers = sync.Pool{New: func() any { return new(grower) }}

// reset prepares pooled state for one tree over n examples.
func (g *grower) reset(cfg *CARTConfig, fc *featureColumns, numFeatures, n int) {
	g.cfg, g.fc, g.numFeatures = cfg, fc, numFeatures
	if cap(g.pos) < n {
		g.pos = make([]int, 0, n)
	} else {
		g.pos = g.pos[:0]
	}
	if cap(g.neg) < n {
		g.neg = make([]int, 0, n)
	} else {
		g.neg = g.neg[:0]
	}
	if cap(g.wgt) < n {
		g.wgt = make([]int32, n)
	} else {
		g.wgt = g.wgt[:n]
		clear(g.wgt)
	}
	if cap(g.scratch) < n {
		g.scratch = make([]int, 0, n)
	}
	if cap(g.nodes) < 2*n {
		g.nodes = make([]treeNode, 0, 2*n)
	} else {
		g.nodes = g.nodes[:0]
	}
}

// grow appends the subtree over a node's examples — given as label-
// partitioned lists of distinct indices (posIdx malicious, negIdx benign)
// plus the node's duplicate-inclusive totals (pos malicious draws, n all
// draws) — to the preorder node arena, returning its root index.
func (g *grower) grow(posIdx, negIdx []int, pos, n, depth int, rng *rand.Rand) int32 {
	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, treeNode{feature: -1, left: -1, right: -1})

	leaf := func() int32 {
		g.nodes[self].prob = (float64(pos) + 0.5) / (float64(n) + 1)
		return self
	}
	if depth >= g.cfg.MaxDepth || n < 2*g.cfg.MinLeaf || pos == 0 || pos == n {
		return leaf()
	}

	parentGini := gini(pos, n)
	bestFeature, bestGain := -1, 1e-12
	bestSetPos, bestSetN := 0, 0

	for _, f := range g.candidateFeatures(rng) {
		col := g.fc.bits[f]
		setPos := countSet(col, posIdx, g.wgt)
		setN := setPos + countSet(col, negIdx, g.wgt)
		if setN < g.cfg.MinLeaf || n-setN < g.cfg.MinLeaf {
			continue
		}
		gain := parentGini -
			(float64(setN)/float64(n))*gini(setPos, setN) -
			(float64(n-setN)/float64(n))*gini(pos-setPos, n-setN)
		if gain > bestGain {
			bestGain, bestFeature = gain, f
			bestSetPos, bestSetN = setPos, setN
		}
	}
	if bestFeature < 0 {
		return leaf()
	}
	g.importance[bestFeature] += bestGain * float64(n)

	col := g.fc.bits[bestFeature]
	leftPos, rightPos := g.partition(col, posIdx)
	leftNeg, rightNeg := g.partition(col, negIdx)
	g.nodes[self].feature = int32(bestFeature)
	left := g.grow(leftPos, leftNeg, pos-bestSetPos, n-bestSetN, depth+1, rng)
	right := g.grow(rightPos, rightNeg, bestSetPos, bestSetN, depth+1, rng)
	g.nodes[self].left = left
	g.nodes[self].right = right
	return self
}

// countSet sums the bootstrap weight of the example indices whose column
// bit is set — exactly the count a duplicate-expanded index list would
// produce.
func countSet(col []uint64, idx []int, wgt []int32) int {
	c := int32(0)
	for _, i := range idx {
		// Branchless: the bit-membership test on near-random example
		// subsets is the least predictable branch in training.
		bit := int32(col[i>>6]>>(uint(i)&63)) & 1
		c += bit * wgt[i]
	}
	return int(c)
}

// partition stably splits idx in place by the column bit: clear bits are
// compacted to the front, set bits staged in scratch and copied back after
// the boundary. Children slice the parent's storage, so a whole tree
// partitions with zero index allocations.
func (g *grower) partition(col []uint64, idx []int) (clear, set []int) {
	right := g.scratch[:0]
	left := idx[:0]
	for _, i := range idx {
		if colTest(col, i) {
			right = append(right, i)
		} else {
			left = append(left, i)
		}
	}
	rest := idx[len(left):]
	copy(rest, right)
	return left, rest
}

// candidateFeatures returns the features to evaluate at one split. The
// returned slice is reused across nodes.
func (g *grower) candidateFeatures(rng *rand.Rand) []int {
	m := g.cfg.MTry
	if m <= 0 || m >= g.numFeatures {
		if len(g.identity) != g.numFeatures {
			g.identity = make([]int, g.numFeatures)
			for i := range g.identity {
				g.identity[i] = i
			}
		}
		return g.identity
	}
	if cap(g.draws) < m {
		g.draws = make([]int, m)
	}
	d := g.draws[:m]
	for i := range d {
		d[i] = rng.Intn(g.numFeatures)
	}
	return d
}

// Score implements Scorer: leaf probability shifted to a zero threshold.
func (t *CART) Score(x Vector) float64 { return t.prob(x) - 0.5 }

// prob walks the tree.
func (t *CART) prob(x Vector) float64 {
	nodes := t.nodes
	node := &nodes[0]
	for node.feature >= 0 {
		if x.Get(int(node.feature)) {
			node = &nodes[node.right]
		} else {
			node = &nodes[node.left]
		}
	}
	return node.prob
}

// probBatch4 walks four rows through the tree in lockstep over the batch
// layout. The four index chains are data-independent, so their dependent
// node/feature loads overlap in the pipeline instead of serializing the
// way four prob calls would; self-looping leaves make every step uniform
// (finished rows idle on their leaf until the deepest row lands). Each row
// reaches exactly the leaf prob would reach.
func (t *CART) probBatch4(x0, x1, x2, x3 Vector) (p0, p1, p2, p3 float64) {
	nodes := t.bnodes
	var i0, i1, i2, i3 int32
	for s := 0; s < t.depth; s++ {
		n0, n1, n2, n3 := nodes[i0], nodes[i1], nodes[i2], nodes[i3]
		i0 = n0.left
		if x0[n0.word]&n0.mask != 0 {
			i0 = n0.right
		}
		i1 = n1.left
		if x1[n1.word]&n1.mask != 0 {
			i1 = n1.right
		}
		i2 = n2.left
		if x2[n2.word]&n2.mask != 0 {
			i2 = n2.right
		}
		i3 = n3.left
		if x3[n3.word]&n3.mask != 0 {
			i3 = n3.right
		}
	}
	return nodes[i0].prob, nodes[i1].prob, nodes[i2].prob, nodes[i3].prob
}

// Predict implements Classifier.
func (t *CART) Predict(x Vector) bool {
	if !t.trained {
		return false
	}
	return t.prob(x) > 0.5
}

// defaultMTry is the forest's feature-subset size: sqrt(d).
func defaultMTry(numFeatures int) int {
	m := int(math.Sqrt(float64(numFeatures)))
	if m < 1 {
		m = 1
	}
	return m
}
