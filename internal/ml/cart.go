package ml

import (
	"math"
	"math/rand"
)

// CARTConfig configures a single classification tree.
type CARTConfig struct {
	MaxDepth int
	MinLeaf  int
	// MTry, when positive, restricts each split to a random feature
	// subset of that size (used by random forests). Zero means all
	// features are candidates.
	MTry int
	Seed int64
}

// CART is a classification tree splitting on binary features by Gini
// impurity (Breiman et al., the paper's [8]).
type CART struct {
	cfg     CARTConfig
	trained bool
	root    *treeNode
	// importance accumulates per-feature Gini importance (impurity
	// decrease weighted by node size), populated during Train.
	importance []float64
}

type treeNode struct {
	feature     int // -1 for leaves
	left, right *treeNode
	prob        float64 // P(malicious) at leaf
}

// NewCART returns an untrained tree.
func NewCART(cfg CARTConfig) *CART {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 14
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	return &CART{cfg: cfg}
}

// Name implements Classifier.
func (t *CART) Name() string { return "CART" }

// Importance returns per-feature Gini importance (unnormalized).
func (t *CART) Importance() []float64 { return t.importance }

// Train implements Classifier.
func (t *CART) Train(d *Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.importance = make([]float64, d.NumFeatures)
	t.root = t.grow(d, idx, 0, rng)
	t.trained = true
	return nil
}

// TrainBootstrap trains on a bootstrap sample drawn with rng (random
// forest bagging).
func (t *CART) TrainBootstrap(d *Dataset, rng *rand.Rand) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	t.importance = make([]float64, d.NumFeatures)
	t.root = t.grow(d, idx, 0, rng)
	t.trained = true
	return nil
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

func (t *CART) grow(d *Dataset, idx []int, depth int, rng *rand.Rand) *treeNode {
	pos := 0
	for _, i := range idx {
		if d.Examples[i].Y {
			pos++
		}
	}
	n := len(idx)
	leaf := func() *treeNode {
		return &treeNode{feature: -1, prob: (float64(pos) + 0.5) / (float64(n) + 1)}
	}
	if depth >= t.cfg.MaxDepth || n < 2*t.cfg.MinLeaf || pos == 0 || pos == n {
		return leaf()
	}

	parentGini := gini(pos, n)
	bestFeature, bestGain := -1, 1e-12

	candidates := t.candidateFeatures(d.NumFeatures, rng)
	for _, f := range candidates {
		setN, setPos := 0, 0
		for _, i := range idx {
			if d.Examples[i].X.Get(f) {
				setN++
				if d.Examples[i].Y {
					setPos++
				}
			}
		}
		if setN < t.cfg.MinLeaf || n-setN < t.cfg.MinLeaf {
			continue
		}
		gain := parentGini -
			(float64(setN)/float64(n))*gini(setPos, setN) -
			(float64(n-setN)/float64(n))*gini(pos-setPos, n-setN)
		if gain > bestGain {
			bestGain, bestFeature = gain, f
		}
	}
	if bestFeature < 0 {
		return leaf()
	}
	t.importance[bestFeature] += bestGain * float64(n)

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.Examples[i].X.Get(bestFeature) {
			rightIdx = append(rightIdx, i)
		} else {
			leftIdx = append(leftIdx, i)
		}
	}
	return &treeNode{
		feature: bestFeature,
		left:    t.grow(d, leftIdx, depth+1, rng),
		right:   t.grow(d, rightIdx, depth+1, rng),
	}
}

// candidateFeatures returns the features to evaluate at one split.
func (t *CART) candidateFeatures(numFeatures int, rng *rand.Rand) []int {
	if t.cfg.MTry <= 0 || t.cfg.MTry >= numFeatures {
		all := make([]int, numFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	out := make([]int, t.cfg.MTry)
	for i := range out {
		out[i] = rng.Intn(numFeatures)
	}
	return out
}

// Score implements Scorer: leaf probability shifted to a zero threshold.
func (t *CART) Score(x Vector) float64 { return t.prob(x) - 0.5 }

// prob walks the tree.
func (t *CART) prob(x Vector) float64 {
	node := t.root
	for node.feature >= 0 {
		if x.Get(node.feature) {
			node = node.right
		} else {
			node = node.left
		}
	}
	return node.prob
}

// Predict implements Classifier.
func (t *CART) Predict(x Vector) bool {
	if !t.trained {
		return false
	}
	return t.prob(x) > 0.5
}

// defaultMTry is the forest's feature-subset size: sqrt(d).
func defaultMTry(numFeatures int) int {
	m := int(math.Sqrt(float64(numFeatures)))
	if m < 1 {
		m = 1
	}
	return m
}
