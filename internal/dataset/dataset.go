// Package dataset generates the labelled ground-truth corpus standing in
// for the paper's 501,971 T-Market submissions (§4.1): benign apps across
// store categories and malicious apps across ten families, at a
// configurable scale with the paper's class balance (38,698 malicious ≈
// 7.7%) and update share (~85% of submissions are updates).
//
// Apps are stored as generation specs; programs are rebuilt on demand, so
// paper-scale corpora do not hold half a million behaviour programs in
// memory at once.
package dataset

import (
	"fmt"
	"math/rand"

	"apichecker/internal/behavior"
	"apichecker/internal/framework"
)

// Config controls corpus generation.
type Config struct {
	Seed    int64
	NumApps int

	// MaliciousFraction defaults to the T-Market ratio 38698/501971.
	MaliciousFraction float64

	// UpdatedFraction of apps are updates of earlier submissions
	// (version > 1).
	UpdatedFraction float64
}

// DefaultConfig returns a laptop-scale corpus with the paper's mix.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumApps:           4000,
		MaliciousFraction: 38698.0 / 501971.0,
		UpdatedFraction:   0.85,
	}
}

func (c Config) validate() error {
	if c.NumApps < 20 {
		return fmt.Errorf("dataset: NumApps %d too small", c.NumApps)
	}
	if c.MaliciousFraction <= 0 || c.MaliciousFraction >= 1 {
		return fmt.Errorf("dataset: malicious fraction %f out of (0,1)", c.MaliciousFraction)
	}
	if c.UpdatedFraction < 0 || c.UpdatedFraction > 1 {
		return fmt.Errorf("dataset: updated fraction %f out of [0,1]", c.UpdatedFraction)
	}
	return nil
}

// App is one corpus entry: the generation spec plus its ground-truth label
// as established by T-Market's review process.
type App struct {
	Spec  behavior.Spec
	Label behavior.Label
}

// Corpus is a labelled app population bound to a universe.
type Corpus struct {
	cfg Config
	u   *framework.Universe
	gen *behavior.Generator

	Apps []App

	// cache retains full-tracking emulation passes so usage measurement
	// and vectorization share one pass; see FullRuns.
	cache    runCache
	cacheOff bool
}

// Generate builds a corpus deterministically.
func Generate(u *framework.Universe, cfg Config) (*Corpus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{cfg: cfg, u: u, gen: behavior.NewGenerator(u)}
	c.Apps = make([]App, 0, cfg.NumApps)
	for i := 0; i < cfg.NumApps; i++ {
		label := behavior.Benign
		if rng.Float64() < cfg.MaliciousFraction {
			label = behavior.Malicious
		}
		version := 1
		if rng.Float64() < cfg.UpdatedFraction {
			version = 2 + rng.Intn(18)
		}
		spec := behavior.Spec{
			PackageName: packageName(rng, i),
			Version:     version,
			Seed:        cfg.Seed ^ int64(i)*0x9e3779b97f4a7c ^ 0x0ddba11,
			Label:       label,
		}
		if label == behavior.Malicious {
			spec.Family = sampleFamily(rng)
		} else {
			spec.Category = behavior.Category(rng.Intn(behavior.NumCategories))
		}
		c.Apps = append(c.Apps, App{Spec: spec, Label: label})
	}
	return c, nil
}

// FromApps builds a corpus directly from app specs over a universe —
// the retraining path, where a market combines its original ground-truth
// data with newly labelled submissions (possibly over an evolved universe).
func FromApps(u *framework.Universe, seed int64, apps []App) *Corpus {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumApps = len(apps)
	return &Corpus{cfg: cfg, u: u, gen: behavior.NewGenerator(u), Apps: apps}
}

// MustGenerate panics on config errors; for tests and examples.
func MustGenerate(u *framework.Universe, cfg Config) *Corpus {
	c, err := Generate(u, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Universe returns the corpus's universe.
func (c *Corpus) Universe() *framework.Universe { return c.u }

// Generator returns the behaviour generator (rebuild the corpus after
// Universe.Evolve to refresh it).
func (c *Corpus) Generator() *behavior.Generator { return c.gen }

// Config returns the generation config.
func (c *Corpus) Config() Config { return c.cfg }

// Len returns the number of apps.
func (c *Corpus) Len() int { return len(c.Apps) }

// Positives counts malicious apps.
func (c *Corpus) Positives() int {
	n := 0
	for i := range c.Apps {
		if c.Apps[i].Label == behavior.Malicious {
			n++
		}
	}
	return n
}

// Program rebuilds app i's behaviour program.
func (c *Corpus) Program(i int) *behavior.Program {
	return c.gen.Generate(c.Apps[i].Spec)
}

// Labels returns the ground-truth label slice (true = malicious).
func (c *Corpus) Labels() []bool {
	out := make([]bool, len(c.Apps))
	for i := range c.Apps {
		out[i] = c.Apps[i].Label == behavior.Malicious
	}
	return out
}

// familyWeights reflects the observed family mix in market submissions:
// commodity families dominate; careful evaders and ultra-low-profile
// samples are the (valuable) minority that drives the residual false
// negatives (§5.2).
var familyWeights = map[behavior.Family]int{
	behavior.FamilySMSFraud:         16,
	behavior.FamilySpyware:          16,
	behavior.FamilyRansomware:       10,
	behavior.FamilyOverlay:          10,
	behavior.FamilyRootExploit:      10,
	behavior.FamilyUpdateAttack:     12,
	behavior.FamilyAdFraud:          12,
	behavior.FamilyReflectionEvader: 5,
	behavior.FamilyIntentEvader:     5,
	behavior.FamilyLowProfile:       4,
}

func sampleFamily(rng *rand.Rand) behavior.Family {
	total := 0
	for _, w := range familyWeights {
		total += w
	}
	r := rng.Intn(total)
	for f := behavior.FamilySMSFraud; f <= behavior.FamilyLowProfile; f++ {
		r -= familyWeights[f]
		if r < 0 {
			return f
		}
	}
	return behavior.FamilySpyware
}

var pkgWords = []string{
	"atlas", "bolt", "cider", "delta", "ember", "flux", "gem", "halo",
	"iris", "jade", "kite", "lumen", "mint", "nova", "onyx", "pixel",
	"quill", "ray", "sol", "tide", "ursa", "vibe", "wave", "xeno",
	"yarn", "zephyr", "craft", "dash", "echo", "forge",
}

var pkgTLDs = []string{"com", "net", "org", "io", "cn", "app"}

func packageName(rng *rand.Rand, i int) string {
	return fmt.Sprintf("%s.%s.%s%d",
		pkgTLDs[rng.Intn(len(pkgTLDs))],
		pkgWords[rng.Intn(len(pkgWords))],
		pkgWords[rng.Intn(len(pkgWords))],
		i)
}
