package dataset

import (
	"sync"

	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/manifest"
)

// runKey identifies one cached full-tracking corpus pass. Epoch is the
// universe's SDK level: Universe.Evolve bumps it, so results recorded
// against an older SDK can never be served for an evolved universe.
type runKey struct {
	epoch   int
	profile string
	events  int
}

// runEntry retains the observables of one full-tracking pass: the per-app
// emulation results (whose logs are supersets of any key-API log under the
// same profile/seed) and the per-app manifests the vectorizer pairs them
// with.
type runEntry struct {
	key       runKey
	results   []*emulator.Result
	manifests []*manifest.Manifest
}

// runCacheCapacity bounds retained passes per corpus. Two entries cover
// the common working set — the §4.3 measurement profile plus one
// deployment profile — without letting event-count sweeps hoard memory at
// paper scale.
const runCacheCapacity = 2

// runCache is the per-corpus store of full-tracking passes, LRU-evicted.
type runCache struct {
	mu      sync.Mutex
	entries []*runEntry // most recently used last
}

// lookup returns the entry for key, refreshing its LRU position.
func (rc *runCache) lookup(key runKey) *runEntry {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i, e := range rc.entries {
		if e.key == key {
			rc.entries = append(append(rc.entries[:i:i], rc.entries[i+1:]...), e)
			return e
		}
	}
	return nil
}

// store inserts an entry, evicting the least recently used beyond
// capacity.
func (rc *runCache) store(e *runEntry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i, old := range rc.entries {
		if old.key == e.key {
			rc.entries = append(rc.entries[:i:i], rc.entries[i+1:]...)
			break
		}
	}
	rc.entries = append(rc.entries, e)
	if len(rc.entries) > runCacheCapacity {
		rc.entries = rc.entries[len(rc.entries)-runCacheCapacity:]
	}
}

// invalidate drops every retained pass.
func (rc *runCache) invalidate() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.entries = nil
}

// SetRunCaching enables or disables run-result retention. Disabling also
// drops anything already cached; every subsequent pass re-emulates, which
// is the pre-cache two-pass pipeline (kept reachable for the determinism
// tests and the before/after benchmarks).
func (c *Corpus) SetRunCaching(enabled bool) {
	c.cacheOff = !enabled
	c.cache.invalidate()
}

// InvalidateRuns drops all cached emulation passes. Callers that evolve
// the universe do not strictly need this — cache keys carry the SDK epoch,
// so stale entries already miss — but freeing the memory eagerly matters
// at paper scale.
func (c *Corpus) InvalidateRuns() { c.cache.invalidate() }

// FullRuns returns the full-tracking emulation results (and per-app
// manifests) of the corpus under a profile, emulating at most once per
// (epoch, profile, events): repeated calls are served from the run cache.
// This is the single pass that CollectUsage measures usage from and
// Vectorize projects feature vectors from.
func (c *Corpus) FullRuns(prof emulator.Profile, events int) ([]*emulator.Result, []*manifest.Manifest, error) {
	key := runKey{epoch: c.u.Level(), profile: prof.Name, events: events}
	if !c.cacheOff {
		if e := c.cache.lookup(key); e != nil {
			return e.results, e.manifests, nil
		}
	}
	reg, err := newFullRegistry(c.u)
	if err != nil {
		return nil, nil, err
	}
	entry := &runEntry{
		key:       key,
		results:   make([]*emulator.Result, c.Len()),
		manifests: make([]*manifest.Manifest, c.Len()),
	}
	err = c.runAll(reg, prof, events, func(i int, p *behavior.Program, res *emulator.Result) error {
		man, err := p.Manifest(c.u)
		if err != nil {
			return err
		}
		entry.results[i] = res
		entry.manifests[i] = man
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if !c.cacheOff {
		c.cache.store(entry)
	}
	return entry.results, entry.manifests, nil
}
