package dataset

import (
	"math"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func testCorpus(t *testing.T, n int) *Corpus {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumApps = n
	c, err := Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateCorpus(t *testing.T) {
	c := testCorpus(t, 500)
	if c.Len() != 500 {
		t.Fatalf("len = %d", c.Len())
	}
	frac := float64(c.Positives()) / float64(c.Len())
	if frac < 0.04 || frac > 0.12 {
		t.Errorf("malicious fraction = %.3f, want ≈ 0.077", frac)
	}
	updated := 0
	families := make(map[behavior.Family]bool)
	for i := range c.Apps {
		a := &c.Apps[i]
		if a.Spec.Version > 1 {
			updated++
		}
		if a.Label == behavior.Malicious {
			families[a.Spec.Family] = true
			if a.Spec.Family == behavior.FamilyNone {
				t.Error("malicious app without family")
			}
		}
	}
	if f := float64(updated) / float64(c.Len()); f < 0.8 || f > 0.9 {
		t.Errorf("updated fraction = %.3f, want ≈ 0.85", f)
	}
	if len(families) < behavior.NumFamilies-2 {
		t.Errorf("families represented = %d, want ≈ %d", len(families), behavior.NumFamilies)
	}
	// Programs regenerate deterministically.
	p1 := c.Program(3)
	p2 := c.Program(3)
	if p1.PackageName != p2.PackageName || len(p1.Activities) != len(p2.Activities) {
		t.Error("Program not deterministic")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.NumApps = 2 },
		func(c *Config) { c.MaliciousFraction = 0 },
		func(c *Config) { c.MaliciousFraction = 1 },
		func(c *Config) { c.UpdatedFraction = 2 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Generate(testU, cfg); err == nil {
			t.Errorf("Generate accepted %+v", cfg)
		}
	}
}

// The central calibration test: collect usage on a mid-size corpus, run
// key-API selection, and check the emergent structure matches the paper's
// shape (scaled to the test universe).
func TestUsageSelectionCalibration(t *testing.T) {
	c := testCorpus(t, 900)
	usage, runs, err := c.CollectUsage(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != c.Len() {
		t.Fatalf("runs = %d", len(runs))
	}

	sel := features.SelectKeyAPIs(testU, usage, features.DefaultSelectionConfig())

	// Designed signal population (test scale): how much does Set-C
	// recover?
	designedSignal := 0
	recovered := 0
	inC := make(map[framework.APIID]bool)
	for _, id := range sel.SetC {
		inC[id] = true
	}
	for _, a := range testU.APIs() {
		if a.Role == framework.RoleMaliceSignal && !a.Hidden {
			designedSignal++
			if inC[a.ID] {
				recovered++
			}
		}
	}
	if designedSignal == 0 {
		t.Fatal("universe has no signal APIs")
	}
	recall := float64(recovered) / float64(designedSignal)
	if recall < 0.4 {
		t.Errorf("Set-C recovers %.2f of designed signal APIs (%d/%d)", recall, recovered, designedSignal)
	}
	// Set-C should not balloon with uncorrelated APIs.
	if len(sel.SetC) > designedSignal*2+20 {
		t.Errorf("Set-C = %d APIs, designed signal only %d", len(sel.SetC), designedSignal)
	}
	// Union sizes: keys ≈ C + P + S minus overlaps.
	if len(sel.Keys) < len(sel.SetP) || len(sel.Keys) > len(sel.SetC)+len(sel.SetP)+len(sel.SetS) {
		t.Errorf("keys = %d (C=%d P=%d S=%d)", len(sel.Keys), len(sel.SetC), len(sel.SetP), len(sel.SetS))
	}

	// The designated frequent-negative anchors must show negative SRC.
	negStrong := 0
	for _, a := range testU.APIs() {
		if a.Role == framework.RoleBenignCommon && a.MaliceRate < 0.9 && !a.Hidden {
			if usage.SRC(a.ID) < -0.1 {
				negStrong++
			}
		}
	}
	if negStrong == 0 {
		t.Error("no frequent API shows negative correlation")
	}

	// Invocation-volume sanity: hot APIs dominate.
	var total float64
	for i := range runs {
		total += float64(runs[i].TotalInvocations)
	}
	mean := total / float64(len(runs))
	if mean <= 0 {
		t.Fatal("no invocations recorded")
	}
}

func TestVectorizeAndClassify(t *testing.T) {
	c := testCorpus(t, 700)
	usage, _, err := c.CollectUsage(5000)
	if err != nil {
		t.Fatal(err)
	}
	sel := features.SelectKeyAPIs(testU, usage, features.DefaultSelectionConfig())
	ex, err := features.NewExtractor(testU, sel.Keys, features.ModeAPI)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Vectorize(ex, emulator.GoogleEmulator, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != c.Len() || d.Positives() != c.Positives() {
		t.Fatalf("dataset %d/%d, want %d/%d", d.Len(), d.Positives(), c.Len(), c.Positives())
	}
	res, err := ml.CrossValidate(func() ml.Classifier {
		return ml.NewClassifier(ml.ModelRandomForest, 7)
	}, d, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Precision() < 0.8 || res.Confusion.Recall() < 0.65 {
		t.Errorf("RF on key APIs: %v — want high precision/recall", res.Confusion)
	}
}

func TestRunTimesTrackingMonotonicity(t *testing.T) {
	c := testCorpus(t, 200)
	none, err := c.RunTimes(nil, emulator.GoogleEmulator, 5000)
	if err != nil {
		t.Fatal(err)
	}
	all, err := c.RunTimes(AllTrackableAPIs(testU), emulator.GoogleEmulator, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var tNone, tAll float64
	for i := range none {
		tNone += none[i].Time.Minutes()
		tAll += all[i].Time.Minutes()
	}
	if !(tAll > tNone*2) {
		t.Errorf("tracking all (%0.1f min) not clearly slower than none (%0.1f min)", tAll, tNone)
	}
	// Total invocation volume is tracking-independent.
	for i := range none {
		if none[i].TotalInvocations != all[i].TotalInvocations {
			t.Fatalf("app %d volume differs across registries", i)
		}
	}
}

func TestLightweightSavingOnCorpus(t *testing.T) {
	c := testCorpus(t, 200)
	usage, _, err := c.CollectUsage(5000)
	if err != nil {
		t.Fatal(err)
	}
	sel := features.SelectKeyAPIs(testU, usage, features.DefaultSelectionConfig())
	google, err := c.RunTimes(sel.Keys, emulator.GoogleEmulator, 5000)
	if err != nil {
		t.Fatal(err)
	}
	light, err := c.RunTimes(sel.Keys, emulator.LightweightEmulator, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var tg, tl float64
	fellBack := 0
	for i := range google {
		tg += google[i].Time.Minutes()
		tl += light[i].Time.Minutes()
		if light[i].FellBack {
			fellBack++
		}
	}
	saving := 1 - tl/tg
	if math.Abs(saving-0.7) > 0.15 {
		t.Errorf("lightweight saving = %.2f, want ≈ 0.70", saving)
	}
	if frac := float64(fellBack) / float64(len(light)); frac > 0.03 {
		t.Errorf("fallback fraction = %.3f, want < 1%%-ish", frac)
	}
}
