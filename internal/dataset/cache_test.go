package dataset

import (
	"testing"

	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// newTestCorpus builds two identical corpora over fresh universes so the
// cached single-pass pipeline and the legacy two-pass pipeline can be
// compared without sharing state.
func twinCorpora(t *testing.T, nApps int) (*Corpus, *Corpus) {
	t.Helper()
	ua := framework.MustGenerate(framework.TestConfig(2000))
	ub := framework.MustGenerate(framework.TestConfig(2000))
	cfg := DefaultConfig()
	cfg.NumApps = nApps
	a := MustGenerate(ua, cfg)
	b := MustGenerate(ub, cfg)
	return a, b
}

func selectKeys(t *testing.T, c *Corpus, events int) *features.Selection {
	t.Helper()
	usage, _, err := c.CollectUsage(events)
	if err != nil {
		t.Fatal(err)
	}
	return features.SelectKeyAPIs(c.Universe(), usage, features.DefaultSelectionConfig())
}

func datasetsEqual(t *testing.T, a, b *ml.Dataset) {
	t.Helper()
	if a.Len() != b.Len() || a.NumFeatures != b.NumFeatures {
		t.Fatalf("shape: %d×%d vs %d×%d", a.Len(), a.NumFeatures, b.Len(), b.NumFeatures)
	}
	for i := range a.Examples {
		ea, eb := a.Examples[i], b.Examples[i]
		if ea.Y != eb.Y {
			t.Fatalf("app %d: label %v vs %v", i, ea.Y, eb.Y)
		}
		if ea.X.Hamming(eb.X) != 0 {
			t.Fatalf("app %d: projected vector differs from two-pass vector (hamming %d)",
				i, ea.X.Hamming(eb.X))
		}
	}
}

// TestVectorizeProjectionMatchesTwoPass is the determinism contract of the
// run cache: projecting A+P+I vectors from the retained full-tracking
// measurement logs must equal the legacy pipeline's dedicated key-API
// re-emulation, feature for feature.
func TestVectorizeProjectionMatchesTwoPass(t *testing.T) {
	const events = 2000
	cached, legacy := twinCorpora(t, 120)
	legacy.SetRunCaching(false)

	for _, prof := range []emulator.Profile{emulator.GoogleEmulator, emulator.LightweightEmulator} {
		sel := selectKeys(t, cached, events)
		exA, err := features.NewExtractor(cached.Universe(), sel.Keys, features.ModeAPI)
		if err != nil {
			t.Fatal(err)
		}
		selB := selectKeys(t, legacy, events)
		exB, err := features.NewExtractor(legacy.Universe(), selB.Keys, features.ModeAPI)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Keys) != len(selB.Keys) {
			t.Fatalf("selection diverged between twin corpora: %d vs %d keys", len(sel.Keys), len(selB.Keys))
		}

		da, err := cached.Vectorize(exA, prof, events)
		if err != nil {
			t.Fatal(err)
		}
		db, err := legacy.Vectorize(exB, prof, events)
		if err != nil {
			t.Fatal(err)
		}
		datasetsEqual(t, da, db)
	}
}

// TestFullRunsCachedOnce asserts the cache really eliminates the second
// corpus pass: CollectUsage pays one emulation per app, and a following
// Vectorize over the same engine pays zero.
func TestFullRunsCachedOnce(t *testing.T) {
	const events = 1500
	u := framework.MustGenerate(framework.TestConfig(2000))
	cfg := DefaultConfig()
	cfg.NumApps = 80
	c := MustGenerate(u, cfg)

	before := emulator.RunCount()
	sel := selectKeys(t, c, events)
	afterUsage := emulator.RunCount()
	if got := afterUsage - before; got != int64(c.Len()) {
		t.Fatalf("measurement pass ran %d emulations, want %d", got, c.Len())
	}

	ex, err := features.NewExtractor(u, sel.Keys, features.ModeAPI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.VectorizeMeasured(ex, events); err != nil {
		t.Fatal(err)
	}
	if got := emulator.RunCount() - afterUsage; got != 0 {
		t.Fatalf("vectorization after measurement ran %d extra emulations, want 0", got)
	}

	// A different profile is a different pass (and fallback re-runs may
	// add a few): it must emulate, then hit its own cache entry.
	if _, err := c.Vectorize(ex, emulator.LightweightEmulator, events); err != nil {
		t.Fatal(err)
	}
	mid := emulator.RunCount()
	if got := mid - afterUsage; got < int64(c.Len()) {
		t.Fatalf("new-profile pass ran %d emulations, want >= %d", got, c.Len())
	}
	if _, err := c.Vectorize(ex, emulator.LightweightEmulator, events); err != nil {
		t.Fatal(err)
	}
	if got := emulator.RunCount() - mid; got != 0 {
		t.Fatalf("repeated same-profile vectorization ran %d emulations, want 0", got)
	}
}

// TestRunCacheInvalidatedByEvolve: an SDK evolution must invalidate cached
// passes via the epoch key, and InvalidateRuns must drop them eagerly.
func TestRunCacheInvalidatedByEvolve(t *testing.T) {
	const events = 1000
	u := framework.MustGenerate(framework.TestConfig(2000))
	cfg := DefaultConfig()
	cfg.NumApps = 40
	c := MustGenerate(u, cfg)

	if _, _, err := c.FullRuns(emulator.GoogleEmulator, events); err != nil {
		t.Fatal(err)
	}
	before := emulator.RunCount()
	u.Evolve(7)
	if _, _, err := c.FullRuns(emulator.GoogleEmulator, events); err != nil {
		t.Fatal(err)
	}
	if got := emulator.RunCount() - before; got != int64(c.Len()) {
		t.Fatalf("post-evolve pass ran %d emulations, want %d (stale epoch served?)", got, c.Len())
	}

	before = emulator.RunCount()
	c.InvalidateRuns()
	if _, _, err := c.FullRuns(emulator.GoogleEmulator, events); err != nil {
		t.Fatal(err)
	}
	if got := emulator.RunCount() - before; got != int64(c.Len()) {
		t.Fatalf("post-invalidate pass ran %d emulations, want %d", got, c.Len())
	}
}
