package dataset

import (
	"fmt"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
	"apichecker/internal/parallel"
)

// AppRun captures the per-app observables of one corpus emulation pass.
type AppRun struct {
	Time             time.Duration
	TotalInvocations uint64
	Intercepted      uint64
	RAC              float64
	Detected         bool
	FellBack         bool
	DistinctAPIs     int
}

// AllTrackableAPIs returns every non-hidden API: the "track all 50K"
// registry input.
func AllTrackableAPIs(u *framework.Universe) []framework.APIID {
	var out []framework.APIID
	for i := range u.APIs() {
		if !u.APIs()[i].Hidden {
			out = append(out, u.APIs()[i].ID)
		}
	}
	return out
}

// newFullRegistry builds the track-everything registry of the measurement
// pass.
func newFullRegistry(u *framework.Universe) (*hook.Registry, error) {
	return hook.NewRegistry(u, AllTrackableAPIs(u))
}

// runAll emulates every corpus app under the registry/profile and hands
// each (index, result) to sink in app order. Per-app Monkey seeds derive
// from the queue position, so results are independent of host scheduling.
func (c *Corpus) runAll(reg *hook.Registry, prof emulator.Profile, events int,
	sink func(i int, p *behavior.Program, res *emulator.Result) error) error {

	type outcome struct {
		p   *behavior.Program
		res *emulator.Result
		err error
	}
	outs := make([]outcome, c.Len())
	emu := emulator.New(prof, reg)

	parallel.Run(c.Len(), 0, func(i int) {
		p := c.Program(i)
		mk := monkey.ProductionConfig(int64(i) * 0x9e37)
		mk.Events = events
		res, err := emu.Run(p, mk)
		outs[i] = outcome{p, res, err}
	})

	for i := range outs {
		if outs[i].err != nil {
			return fmt.Errorf("dataset: app %d (%s): %w", i, c.Apps[i].Spec.PackageName, outs[i].err)
		}
		if err := sink(i, outs[i].p, outs[i].res); err != nil {
			return err
		}
	}
	return nil
}

// CollectUsage runs the full corpus on the hardened study engine tracking
// every hookable API, producing the per-API usage statistics feature
// selection consumes (§4.3's measurement pass) plus per-app run info. The
// pass's raw results are retained in the corpus run cache, so a following
// Vectorize over the same engine projects vectors from them instead of
// re-emulating.
func (c *Corpus) CollectUsage(events int) (*features.UsageStats, []AppRun, error) {
	results, _, err := c.FullRuns(emulator.GoogleEmulator, events)
	if err != nil {
		return nil, nil, err
	}
	usage := features.NewUsageStats(c.u.NumAPIs(), c.Len(), c.Positives())
	// Pre-size every usage column so the fill below never reallocates.
	perAPI := make([]int32, c.u.NumAPIs())
	for _, res := range results {
		for _, inv := range res.Log.Invocations() {
			perAPI[inv.API]++
		}
	}
	for id, n := range perAPI {
		if n > 0 {
			usage.Reserve(framework.APIID(id), int(n))
		}
	}
	runs := make([]AppRun, c.Len())
	for i, res := range results {
		malicious := c.Apps[i].Label == behavior.Malicious
		for _, inv := range res.Log.Invocations() {
			usage.Observe(inv.API, float64(inv.Count), malicious)
		}
		runs[i] = appRun(res)
	}
	return usage, runs, nil
}

// RunTimes emulates the corpus under an arbitrary tracked set and profile,
// returning per-app run info (the timing experiments of Figs. 3, 6, 9, 11,
// 16). Timing depends on the tracked set — every interception costs hook
// overhead — so this never uses the full-tracking run cache: projection
// would preserve the log contents but inflate the virtual clock.
func (c *Corpus) RunTimes(tracked []framework.APIID, prof emulator.Profile, events int) ([]AppRun, error) {
	reg, err := hook.NewRegistry(c.u, tracked)
	if err != nil {
		return nil, err
	}
	runs := make([]AppRun, c.Len())
	err = c.runAll(reg, prof, events, func(i int, p *behavior.Program, res *emulator.Result) error {
		runs[i] = appRun(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

func appRun(res *emulator.Result) AppRun {
	return AppRun{
		Time:             res.VirtualTime,
		TotalInvocations: res.Log.TotalInvocations,
		Intercepted:      res.Log.Intercepted,
		RAC:              res.RAC,
		Detected:         res.Detected,
		FellBack:         res.FellBack,
		DistinctAPIs:     res.Log.DistinctInvoked(),
	}
}

// Vectorize builds the labelled ML dataset for the extractor under a
// profile (the One-Hot encoding pass of §4.2). With run caching on (the
// default) it emulates the corpus at most once per (epoch, profile,
// events) — tracking everything — and projects each vector from the
// retained full log, which is bit-identical to a dedicated key-API
// emulation because the emulation itself is registry-independent. With
// caching off it re-emulates under the extractor's own tracked set, the
// original two-pass behaviour.
func (c *Corpus) Vectorize(ex *features.Extractor, prof emulator.Profile, events int) (*ml.Dataset, error) {
	// An empty tracked set on an unhardened engine behaves differently
	// from any tracked run (no hook artifacts for detection probes to
	// find), so projection from a full-tracking log would be unfaithful.
	projectable := len(ex.TrackedAPIs()) > 0 || prof.Hardened
	if c.cacheOff || !projectable {
		return c.vectorizeEmulated(ex, prof, events)
	}
	results, manifests, err := c.FullRuns(prof, events)
	if err != nil {
		return nil, err
	}
	d := ml.NewDataset(ex.NumFeatures())
	if len(results) > 0 {
		// All results of one pass share a registry: validate the
		// projection once, not per app.
		if err := ex.CanProjectFrom(results[0].Log.Registry()); err != nil {
			return nil, err
		}
	}
	for i, res := range results {
		v, err := ex.Vector(res.Log, manifests[i])
		if err != nil {
			return nil, err
		}
		if err := d.Add(v, c.Apps[i].Label == behavior.Malicious); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// VectorizeMeasured projects the labelled dataset straight from the §4.3
// measurement pass (hardened Google engine), emulating it only if
// CollectUsage has not already paid for it. This is the single-pass
// training path: measurement + feature extraction share one emulation.
func (c *Corpus) VectorizeMeasured(ex *features.Extractor, events int) (*ml.Dataset, error) {
	return c.Vectorize(ex, emulator.GoogleEmulator, events)
}

// vectorizeEmulated is the legacy vectorization pass: emulate the corpus
// under the extractor's own tracked set.
func (c *Corpus) vectorizeEmulated(ex *features.Extractor, prof emulator.Profile, events int) (*ml.Dataset, error) {
	reg, err := hook.NewRegistry(c.u, ex.TrackedAPIs())
	if err != nil {
		return nil, err
	}
	d := ml.NewDataset(ex.NumFeatures())
	err = c.runAll(reg, prof, events, func(i int, p *behavior.Program, res *emulator.Result) error {
		man, err := p.Manifest(c.u)
		if err != nil {
			return err
		}
		v, err := ex.Vector(res.Log, man)
		if err != nil {
			return err
		}
		return d.Add(v, c.Apps[i].Label == behavior.Malicious)
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}
