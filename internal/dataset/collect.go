package dataset

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
)

// AppRun captures the per-app observables of one corpus emulation pass.
type AppRun struct {
	Time             time.Duration
	TotalInvocations uint64
	Intercepted      uint64
	RAC              float64
	Detected         bool
	FellBack         bool
	DistinctAPIs     int
}

// AllTrackableAPIs returns every non-hidden API: the "track all 50K"
// registry input.
func AllTrackableAPIs(u *framework.Universe) []framework.APIID {
	var out []framework.APIID
	for i := range u.APIs() {
		if !u.APIs()[i].Hidden {
			out = append(out, u.APIs()[i].ID)
		}
	}
	return out
}

// runAll emulates every corpus app under the registry/profile and hands
// each (index, result) to sink in app order.
func (c *Corpus) runAll(reg *hook.Registry, prof emulator.Profile, events int,
	sink func(i int, p *behavior.Program, res *emulator.Result) error) error {

	type outcome struct {
		p   *behavior.Program
		res *emulator.Result
		err error
	}
	outs := make([]outcome, c.Len())
	emu := emulator.New(prof, reg)

	workers := runtime.GOMAXPROCS(0)
	if workers > c.Len() {
		workers = c.Len()
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				p := c.Program(i)
				mk := monkey.ProductionConfig(int64(i) * 0x9e37)
				mk.Events = events
				res, err := emu.Run(p, mk)
				outs[i] = outcome{p, res, err}
			}
		}()
	}
	for i := range c.Apps {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for i := range outs {
		if outs[i].err != nil {
			return fmt.Errorf("dataset: app %d (%s): %w", i, c.Apps[i].Spec.PackageName, outs[i].err)
		}
		if err := sink(i, outs[i].p, outs[i].res); err != nil {
			return err
		}
	}
	return nil
}

// CollectUsage runs the full corpus on the hardened study engine tracking
// every hookable API, producing the per-API usage statistics feature
// selection consumes (§4.3's measurement pass) plus per-app run info.
func (c *Corpus) CollectUsage(events int) (*features.UsageStats, []AppRun, error) {
	reg, err := hook.NewRegistry(c.u, AllTrackableAPIs(c.u))
	if err != nil {
		return nil, nil, err
	}
	usage := features.NewUsageStats(c.u.NumAPIs(), c.Len(), c.Positives())
	runs := make([]AppRun, c.Len())
	err = c.runAll(reg, emulator.GoogleEmulator, events, func(i int, p *behavior.Program, res *emulator.Result) error {
		malicious := c.Apps[i].Label == behavior.Malicious
		for _, id := range res.Log.InvokedAPIs() {
			usage.Observe(id, float64(res.Log.Invocation(id).Count), malicious)
		}
		runs[i] = appRun(res)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return usage, runs, nil
}

// RunTimes emulates the corpus under an arbitrary tracked set and profile,
// returning per-app run info (the timing experiments of Figs. 3, 6, 9, 11,
// 16).
func (c *Corpus) RunTimes(tracked []framework.APIID, prof emulator.Profile, events int) ([]AppRun, error) {
	reg, err := hook.NewRegistry(c.u, tracked)
	if err != nil {
		return nil, err
	}
	runs := make([]AppRun, c.Len())
	err = c.runAll(reg, prof, events, func(i int, p *behavior.Program, res *emulator.Result) error {
		runs[i] = appRun(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

func appRun(res *emulator.Result) AppRun {
	return AppRun{
		Time:             res.VirtualTime,
		TotalInvocations: res.Log.TotalInvocations,
		Intercepted:      res.Log.Intercepted,
		RAC:              res.RAC,
		Detected:         res.Detected,
		FellBack:         res.FellBack,
		DistinctAPIs:     res.Log.DistinctInvoked(),
	}
}

// Vectorize emulates the corpus under the extractor's tracked set and
// builds the labelled ML dataset (the One-Hot encoding pass of §4.2).
func (c *Corpus) Vectorize(ex *features.Extractor, prof emulator.Profile, events int) (*ml.Dataset, error) {
	reg, err := hook.NewRegistry(c.u, ex.TrackedAPIs())
	if err != nil {
		return nil, err
	}
	d := ml.NewDataset(ex.NumFeatures())
	err = c.runAll(reg, prof, events, func(i int, p *behavior.Program, res *emulator.Result) error {
		man, err := p.Manifest(c.u)
		if err != nil {
			return err
		}
		v, err := ex.Vector(res.Log, man)
		if err != nil {
			return err
		}
		return d.Add(v, c.Apps[i].Label == behavior.Malicious)
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}
