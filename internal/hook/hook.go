// Package hook is the API-interception engine, our stand-in for the Xposed
// framework (§4.2): it intercepts a configured set of framework APIs before
// they run, records their names and parameters, and lets callers install
// callbacks that tamper with return values (the emulator's anti-detection
// hardening uses this to fake device identity and hide hooking artifacts).
//
// Interception has a real cost: every intercepted invocation pays a fixed
// overhead, which is why the size and heat of the tracked set dominates
// per-app analysis time (Figs. 3, 6, 9, 16). The engine therefore accounts
// intercepted invocations separately from total invocations.
package hook

import (
	"fmt"
	"sort"

	"apichecker/internal/framework"
)

// Registry is the set of APIs to intercept plus installed callbacks. Build
// once per tracked-set configuration; safe for concurrent readers.
type Registry struct {
	universe *framework.Universe
	tracked  map[framework.APIID]bool
	list     []framework.APIID

	// callbacks run when a tracked API is invoked; used by the
	// hardening layer to tamper with returns (e.g. hiding Xposed from
	// PackageManager.getInstalledApplications).
	callbacks map[framework.APIID]Callback
}

// Callback observes one intercepted invocation and may rewrite its result.
type Callback func(inv *Invocation)

// NewRegistry builds a registry tracking the given APIs. Hidden APIs cannot
// be hooked by name (they are not part of the public SDK surface) and are
// rejected.
func NewRegistry(u *framework.Universe, apis []framework.APIID) (*Registry, error) {
	r := &Registry{
		universe:  u,
		tracked:   make(map[framework.APIID]bool, len(apis)),
		callbacks: make(map[framework.APIID]Callback),
	}
	for _, id := range apis {
		if id < 0 || int(id) >= u.NumAPIs() {
			return nil, fmt.Errorf("hook: API id %d out of range", id)
		}
		if u.API(id).Hidden {
			return nil, fmt.Errorf("hook: cannot hook hidden API %s", u.API(id).Name)
		}
		if !r.tracked[id] {
			r.tracked[id] = true
			r.list = append(r.list, id)
		}
	}
	sort.Slice(r.list, func(i, j int) bool { return r.list[i] < r.list[j] })
	return r, nil
}

// MustNewRegistry panics on invalid input; for tests and fixed configs.
func MustNewRegistry(u *framework.Universe, apis []framework.APIID) *Registry {
	r, err := NewRegistry(u, apis)
	if err != nil {
		panic(err)
	}
	return r
}

// Tracks reports whether the registry intercepts the API.
func (r *Registry) Tracks(id framework.APIID) bool { return r.tracked[id] }

// Size returns the number of tracked APIs.
func (r *Registry) Size() int { return len(r.list) }

// TrackedAPIs returns the sorted tracked set. Callers must not modify it.
func (r *Registry) TrackedAPIs() []framework.APIID { return r.list }

// Universe returns the registry's universe.
func (r *Registry) Universe() *framework.Universe { return r.universe }

// OnInvoke installs a callback for a tracked API. Installing on an
// untracked API is an error: Xposed only sees methods it hooked.
func (r *Registry) OnInvoke(id framework.APIID, cb Callback) error {
	if !r.tracked[id] {
		return fmt.Errorf("hook: OnInvoke on untracked API %d", id)
	}
	r.callbacks[id] = cb
	return nil
}

// Invocation is the aggregated record of one API over one emulation run.
type Invocation struct {
	API    framework.APIID
	Count  uint64
	Params []string // sampled parameter values (first few observed)

	// Tampered marks invocations whose results a callback rewrote.
	Tampered bool
}

// Log collects everything one emulation run observes.
type Log struct {
	registry *Registry

	byAPI map[framework.APIID]*Invocation
	order []framework.APIID

	sentIntents map[framework.IntentID]uint64

	// TotalInvocations counts every framework API invocation the app
	// performed, tracked or not (Fig. 2's statistic).
	TotalInvocations uint64

	// Intercepted counts invocations that paid hook overhead.
	Intercepted uint64

	// ReachedActivities lists activity class names seen starting.
	ReachedActivities []string
}

// NewLog creates an empty log for the registry.
func NewLog(r *Registry) *Log {
	return &Log{
		registry:    r,
		byAPI:       make(map[framework.APIID]*Invocation),
		sentIntents: make(map[framework.IntentID]uint64),
	}
}

// Registry returns the registry the log was recorded under.
func (l *Log) Registry() *Registry { return l.registry }

// Observe records count invocations of the API. Only tracked APIs are
// intercepted and recorded; untracked ones still count toward
// TotalInvocations (they happen, the hook just does not see them).
func (l *Log) Observe(id framework.APIID, count uint64, params ...string) {
	if count == 0 {
		return
	}
	l.TotalInvocations += count
	if !l.registry.Tracks(id) {
		return
	}
	l.Intercepted += count
	inv := l.byAPI[id]
	if inv == nil {
		inv = &Invocation{API: id}
		l.byAPI[id] = inv
		l.order = append(l.order, id)
	}
	inv.Count += count
	for _, p := range params {
		if len(inv.Params) < 8 {
			inv.Params = append(inv.Params, p)
		}
	}
	if cb := l.registry.callbacks[id]; cb != nil {
		cb(inv)
	}
}

// ObserveIntent records an intent send. Binder transactions are visible to
// the instrumentation layer without per-API hook overhead (§4.5: auxiliary
// features cost no extra dynamic-analysis time).
func (l *Log) ObserveIntent(id framework.IntentID, count uint64) {
	if count > 0 {
		l.sentIntents[id] += count
	}
}

// ObserveActivity records that an activity came to the foreground.
func (l *Log) ObserveActivity(name string) {
	l.ReachedActivities = append(l.ReachedActivities, name)
}

// InvokedAPIs returns the tracked APIs observed at least once, in first-
// observation order.
func (l *Log) InvokedAPIs() []framework.APIID {
	out := make([]framework.APIID, len(l.order))
	copy(out, l.order)
	return out
}

// Invocation returns the record for an API, or nil.
func (l *Log) Invocation(id framework.APIID) *Invocation { return l.byAPI[id] }

// DistinctInvoked returns how many tracked APIs were observed.
func (l *Log) DistinctInvoked() int { return len(l.order) }

// SentIntents returns the distinct intent actions sent, sorted by id.
func (l *Log) SentIntents() []framework.IntentID {
	out := make([]framework.IntentID, 0, len(l.sentIntents))
	for id := range l.sentIntents {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntentCount returns how many times an intent action was sent.
func (l *Log) IntentCount(id framework.IntentID) uint64 { return l.sentIntents[id] }
