// Package hook is the API-interception engine, our stand-in for the Xposed
// framework (§4.2): it intercepts a configured set of framework APIs before
// they run, records their names and parameters, and lets callers install
// callbacks that tamper with return values (the emulator's anti-detection
// hardening uses this to fake device identity and hide hooking artifacts).
//
// Interception has a real cost: every intercepted invocation pays a fixed
// overhead, which is why the size and heat of the tracked set dominates
// per-app analysis time (Figs. 3, 6, 9, 16). The engine therefore accounts
// intercepted invocations separately from total invocations.
//
// Observe is the hottest call in the simulator — the §4.3 measurement pass
// intercepts every invocation of every app in the corpus — so the tracked
// set and callback presence are dense per-API bytes rather than map
// lookups, and per-run records live in an append-only arena indexed by a
// pooled dense table that Seal returns once the run is over.
package hook

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"apichecker/internal/framework"
)

// Per-API state bits in Registry.state.
const (
	trackedBit  = 1 << 0
	callbackBit = 1 << 1
)

// Registry is the set of APIs to intercept plus installed callbacks. Build
// once per tracked-set configuration; safe for concurrent readers. OnInvoke
// mutates the registry and must not race with running emulations — install
// callbacks at construction time.
type Registry struct {
	universe *framework.Universe
	list     []framework.APIID

	// state is indexed by APIID: trackedBit marks interception,
	// callbackBit marks an installed callback.
	state []uint8

	// callbacks run when a tracked API is invoked; used by the
	// hardening layer to tamper with returns (e.g. hiding Xposed from
	// PackageManager.getInstalledApplications).
	callbacks map[framework.APIID]Callback
}

// Callback observes one intercepted invocation and may rewrite its result.
type Callback func(inv *Invocation)

// NewRegistry builds a registry tracking the given APIs. Hidden APIs cannot
// be hooked by name (they are not part of the public SDK surface) and are
// rejected.
func NewRegistry(u *framework.Universe, apis []framework.APIID) (*Registry, error) {
	r := &Registry{
		universe:  u,
		state:     make([]uint8, u.NumAPIs()),
		callbacks: make(map[framework.APIID]Callback),
	}
	for _, id := range apis {
		if id < 0 || int(id) >= u.NumAPIs() {
			return nil, fmt.Errorf("hook: API id %d out of range", id)
		}
		if u.API(id).Hidden {
			return nil, fmt.Errorf("hook: cannot hook hidden API %s", u.API(id).Name)
		}
		if r.state[id]&trackedBit == 0 {
			r.state[id] |= trackedBit
			r.list = append(r.list, id)
		}
	}
	sort.Slice(r.list, func(i, j int) bool { return r.list[i] < r.list[j] })
	return r, nil
}

// MustNewRegistry panics on invalid input; for tests and fixed configs.
func MustNewRegistry(u *framework.Universe, apis []framework.APIID) *Registry {
	r, err := NewRegistry(u, apis)
	if err != nil {
		panic(err)
	}
	return r
}

// Tracks reports whether the registry intercepts the API.
func (r *Registry) Tracks(id framework.APIID) bool {
	return id >= 0 && int(id) < len(r.state) && r.state[id]&trackedBit != 0
}

// Size returns the number of tracked APIs.
func (r *Registry) Size() int { return len(r.list) }

// TrackedAPIs returns the sorted tracked set. Callers must not modify it.
func (r *Registry) TrackedAPIs() []framework.APIID { return r.list }

// Universe returns the registry's universe.
func (r *Registry) Universe() *framework.Universe { return r.universe }

// OnInvoke installs a callback for a tracked API. Installing on an
// untracked API is an error: Xposed only sees methods it hooked.
func (r *Registry) OnInvoke(id framework.APIID, cb Callback) error {
	if !r.Tracks(id) {
		return fmt.Errorf("hook: OnInvoke on untracked API %d", id)
	}
	r.callbacks[id] = cb
	r.state[id] |= callbackBit
	return nil
}

// Invocation is the aggregated record of one API over one emulation run.
type Invocation struct {
	API    framework.APIID
	Count  uint64
	Params []string // sampled parameter values (first few observed)

	// Tampered marks invocations whose results a callback rewrote.
	Tampered bool
}

// Log collects everything one emulation run observes.
type Log struct {
	registry *Registry

	// invs is the invocation arena in first-observation order; index maps
	// APIID to arena slot+1 while the run is live, lookup replaces it
	// after Seal.
	invs   []Invocation
	index  []int32
	lookup map[framework.APIID]int32

	sentIntents map[framework.IntentID]uint64

	// paramSlab hands out fixed 4-slot Params windows so a full-tracking
	// run allocates one header chunk per ~128 recording invocations
	// instead of one slice per invocation. Windows stay valid when the
	// slab moves on to a fresh chunk: the old chunk lives on through the
	// windows that reference it.
	paramSlab []string

	// Sealed logs trade the live intent map for sorted parallel slices:
	// pointer-free, smaller, and cheap for the garbage collector to skip
	// while the log sits in a corpus run cache.
	intentIDs    []framework.IntentID
	intentCounts []uint64

	// TotalInvocations counts every framework API invocation the app
	// performed, tracked or not (Fig. 2's statistic).
	TotalInvocations uint64

	// Intercepted counts invocations that paid hook overhead.
	Intercepted uint64

	// ReachedActivities lists activity class names seen starting.
	ReachedActivities []string
}

// indexPool recycles the dense APIID→slot tables between runs. Sealed logs
// return their table zeroed, so a pooled table is always all-zero.
var indexPool sync.Pool

// NewLog creates an empty log for the registry.
func NewLog(r *Registry) *Log {
	n := r.universe.NumAPIs()
	var idx []int32
	if v := indexPool.Get(); v != nil {
		if s := v.([]int32); len(s) >= n {
			idx = s
		}
	}
	if idx == nil {
		idx = make([]int32, n)
	}
	return &Log{
		registry: r,
		// Typical runs touch a few hundred distinct APIs; starting the
		// arena at 128 slots avoids most growth copies on the
		// full-tracking measurement pass.
		invs:  make([]Invocation, 0, 128),
		index: idx,
	}
}

// Registry returns the registry the log was recorded under.
func (l *Log) Registry() *Registry { return l.registry }

// Seal releases the log's dense index back to the shared pool once the run
// is over and compacts the log's pointer-bearing state. Logs are retained
// by result caches for whole corpus passes, so holding a universe-sized
// table per log would dwarf the data it indexes — and every individually
// allocated string or map the log keeps is re-marked by each GC cycle for
// as long as the pass stays cached. Observing a sealed log still works
// (via a small map); reading never needed the table.
func (l *Log) Seal() {
	if l.index == nil {
		return
	}
	for i := range l.invs {
		l.index[l.invs[i].API] = 0
	}
	indexPool.Put(l.index)
	l.index = nil
	l.compactParams()
	l.compactIntents()
	l.compactActivities()
}

// compactParams rewrites every sampled param string in place as a slice
// of one shared backing string, collapsing hundreds of tiny GC-tracked
// string objects per log into one.
func (l *Log) compactParams() {
	total, count := 0, 0
	for i := range l.invs {
		for _, p := range l.invs[i].Params {
			total += len(p)
		}
		count += len(l.invs[i].Params)
	}
	if count == 0 {
		return
	}
	var sb strings.Builder
	sb.Grow(total)
	for i := range l.invs {
		for _, p := range l.invs[i].Params {
			sb.WriteString(p)
		}
	}
	blob := sb.String()
	off := 0
	for i := range l.invs {
		ps := l.invs[i].Params
		for j, p := range ps {
			ps[j] = blob[off : off+len(p)]
			off += len(p)
		}
	}
}

// compactActivities rewrites the reached-activity names as slices of one
// shared backing string; the originals usually borrow from the app's
// program, which the log would otherwise keep alive string by string.
func (l *Log) compactActivities() {
	if len(l.ReachedActivities) == 0 {
		return
	}
	total := 0
	for _, a := range l.ReachedActivities {
		total += len(a)
	}
	var sb strings.Builder
	sb.Grow(total)
	for _, a := range l.ReachedActivities {
		sb.WriteString(a)
	}
	blob := sb.String()
	off := 0
	for i, a := range l.ReachedActivities {
		l.ReachedActivities[i] = blob[off : off+len(a)]
		off += len(a)
	}
}

// compactIntents freezes the live intent map into sorted parallel slices.
func (l *Log) compactIntents() {
	if len(l.sentIntents) == 0 {
		l.sentIntents = nil
		return
	}
	ids := make([]framework.IntentID, 0, len(l.sentIntents))
	for id := range l.sentIntents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	counts := make([]uint64, len(ids))
	for i, id := range ids {
		counts[i] = l.sentIntents[id]
	}
	l.intentIDs, l.intentCounts = ids, counts
	l.sentIntents = nil
}

// slot returns the arena slot for id, allocating one if needed.
func (l *Log) slot(id framework.APIID) int32 {
	if l.index != nil {
		s := l.index[id]
		if s == 0 {
			l.invs = append(l.invs, Invocation{API: id})
			s = int32(len(l.invs))
			l.index[id] = s
		}
		return s
	}
	if l.lookup == nil {
		l.lookup = make(map[framework.APIID]int32, len(l.invs))
		for i := range l.invs {
			l.lookup[l.invs[i].API] = int32(i + 1)
		}
	}
	s := l.lookup[id]
	if s == 0 {
		l.invs = append(l.invs, Invocation{API: id})
		s = int32(len(l.invs))
		l.lookup[id] = s
	}
	return s
}

// Observe records count invocations of the API. Only tracked APIs are
// intercepted and recorded; untracked ones still count toward
// TotalInvocations (they happen, the hook just does not see them).
func (l *Log) Observe(id framework.APIID, count uint64, params ...string) {
	if count == 0 {
		return
	}
	l.TotalInvocations += count
	state := l.registry.state
	if id < 0 || int(id) >= len(state) || state[id]&trackedBit == 0 {
		return
	}
	l.Intercepted += count
	var inv *Invocation
	if idx := l.index; idx != nil {
		// Live-run fast path: one dense-table load, no call overhead.
		s := idx[id]
		if s == 0 {
			l.invs = append(l.invs, Invocation{API: id})
			s = int32(len(l.invs))
			idx[id] = s
		}
		inv = &l.invs[s-1]
	} else {
		inv = &l.invs[l.slot(id)-1]
	}
	inv.Count += count
	for _, p := range params {
		// Cap retained samples: logs survive whole corpus passes in the
		// run cache, and every retained string is GC-traced for as long
		// as the pass stays cached.
		if len(inv.Params) < 4 {
			if inv.Params == nil {
				if cap(l.paramSlab)-len(l.paramSlab) < 4 {
					l.paramSlab = make([]string, 0, 512)
				}
				off := len(l.paramSlab)
				l.paramSlab = l.paramSlab[: off+4 : cap(l.paramSlab)]
				inv.Params = l.paramSlab[off : off : off+4]
			}
			inv.Params = append(inv.Params, p)
		}
	}
	if state[id]&callbackBit != 0 {
		l.registry.callbacks[id](inv)
	}
}

// ObserveIntent records an intent send. Binder transactions are visible to
// the instrumentation layer without per-API hook overhead (§4.5: auxiliary
// features cost no extra dynamic-analysis time).
func (l *Log) ObserveIntent(id framework.IntentID, count uint64) {
	if count == 0 {
		return
	}
	if l.sentIntents == nil {
		// Lazily (re)build the live map; a sealed log thaws its frozen
		// slice form first.
		l.sentIntents = make(map[framework.IntentID]uint64, len(l.intentIDs))
		for i, iid := range l.intentIDs {
			l.sentIntents[iid] = l.intentCounts[i]
		}
		l.intentIDs, l.intentCounts = nil, nil
	}
	l.sentIntents[id] += count
}

// ObserveActivity records that an activity came to the foreground.
func (l *Log) ObserveActivity(name string) {
	l.ReachedActivities = append(l.ReachedActivities, name)
}

// Invocations returns the invocation records in first-observation order.
// Callers must not modify or retain the slice; it is the log's own arena.
func (l *Log) Invocations() []Invocation { return l.invs }

// InvokedAPIs returns the tracked APIs observed at least once, in first-
// observation order.
func (l *Log) InvokedAPIs() []framework.APIID {
	out := make([]framework.APIID, len(l.invs))
	for i := range l.invs {
		out[i] = l.invs[i].API
	}
	return out
}

// Invocation returns the record for an API, or nil.
func (l *Log) Invocation(id framework.APIID) *Invocation {
	if id < 0 || int(id) >= len(l.registry.state) {
		return nil
	}
	var s int32
	if l.index != nil {
		s = l.index[id]
	} else if l.lookup != nil {
		s = l.lookup[id]
	} else {
		for i := range l.invs {
			if l.invs[i].API == id {
				return &l.invs[i]
			}
		}
		return nil
	}
	if s == 0 {
		return nil
	}
	return &l.invs[s-1]
}

// DistinctInvoked returns how many tracked APIs were observed.
func (l *Log) DistinctInvoked() int { return len(l.invs) }

// SentIntents returns the distinct intent actions sent, sorted by id.
func (l *Log) SentIntents() []framework.IntentID {
	if l.sentIntents == nil {
		out := make([]framework.IntentID, len(l.intentIDs))
		copy(out, l.intentIDs)
		return out
	}
	out := make([]framework.IntentID, 0, len(l.sentIntents))
	for id := range l.sentIntents {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntentCount returns how many times an intent action was sent.
func (l *Log) IntentCount(id framework.IntentID) uint64 {
	if l.sentIntents == nil {
		i := sort.Search(len(l.intentIDs), func(i int) bool { return l.intentIDs[i] >= id })
		if i < len(l.intentIDs) && l.intentIDs[i] == id {
			return l.intentCounts[i]
		}
		return 0
	}
	return l.sentIntents[id]
}
