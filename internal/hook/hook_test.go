package hook

import (
	"testing"

	"apichecker/internal/framework"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func someVisible(n int) []framework.APIID {
	var out []framework.APIID
	for _, a := range testU.APIs() {
		if !a.Hidden {
			out = append(out, a.ID)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestNewRegistry(t *testing.T) {
	ids := someVisible(10)
	r, err := NewRegistry(testU, ids)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 10 {
		t.Errorf("Size = %d, want 10", r.Size())
	}
	for _, id := range ids {
		if !r.Tracks(id) {
			t.Errorf("Tracks(%d) = false", id)
		}
	}
	if r.Tracks(ids[len(ids)-1] + 1000) {
		t.Error("Tracks reports untracked API")
	}
	// Duplicates collapse.
	r2, err := NewRegistry(testU, append(ids, ids...))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != 10 {
		t.Errorf("duplicate ids not collapsed: %d", r2.Size())
	}
	// Tracked list is sorted.
	list := r.TrackedAPIs()
	for i := 1; i < len(list); i++ {
		if list[i] <= list[i-1] {
			t.Fatal("TrackedAPIs not sorted")
		}
	}
}

func TestNewRegistryRejectsHiddenAndBogus(t *testing.T) {
	hidden := testU.HiddenAPIs()
	if len(hidden) == 0 {
		t.Fatal("universe has no hidden APIs")
	}
	if _, err := NewRegistry(testU, hidden[:1]); err == nil {
		t.Error("registry accepted a hidden API")
	}
	if _, err := NewRegistry(testU, []framework.APIID{-5}); err == nil {
		t.Error("registry accepted a negative id")
	}
	if _, err := NewRegistry(testU, []framework.APIID{framework.APIID(testU.NumAPIs())}); err == nil {
		t.Error("registry accepted an out-of-range id")
	}
}

func TestLogObserve(t *testing.T) {
	ids := someVisible(5)
	r := MustNewRegistry(testU, ids[:3])
	l := NewLog(r)

	l.Observe(ids[0], 10, "p1")
	l.Observe(ids[0], 5, "p2")
	l.Observe(ids[1], 1)
	l.Observe(ids[4], 100) // untracked
	l.Observe(ids[2], 0)   // zero count: ignored

	if l.TotalInvocations != 116 {
		t.Errorf("TotalInvocations = %d, want 116", l.TotalInvocations)
	}
	if l.Intercepted != 16 {
		t.Errorf("Intercepted = %d, want 16", l.Intercepted)
	}
	if l.DistinctInvoked() != 2 {
		t.Errorf("DistinctInvoked = %d, want 2", l.DistinctInvoked())
	}
	inv := l.Invocation(ids[0])
	if inv == nil || inv.Count != 15 || len(inv.Params) != 2 {
		t.Errorf("Invocation(%d) = %+v", ids[0], inv)
	}
	if l.Invocation(ids[4]) != nil {
		t.Error("untracked API has an invocation record")
	}
	got := l.InvokedAPIs()
	if len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Errorf("InvokedAPIs = %v", got)
	}
}

func TestParamSamplingCap(t *testing.T) {
	ids := someVisible(1)
	r := MustNewRegistry(testU, ids)
	l := NewLog(r)
	for i := 0; i < 50; i++ {
		l.Observe(ids[0], 1, "p")
	}
	if n := len(l.Invocation(ids[0]).Params); n > 8 {
		t.Errorf("params grew unbounded: %d", n)
	}
}

func TestCallbacks(t *testing.T) {
	ids := someVisible(2)
	r := MustNewRegistry(testU, ids[:1])
	called := 0
	if err := r.OnInvoke(ids[0], func(inv *Invocation) {
		called++
		inv.Tampered = true
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.OnInvoke(ids[1], func(*Invocation) {}); err == nil {
		t.Error("OnInvoke accepted untracked API")
	}
	l := NewLog(r)
	l.Observe(ids[0], 3)
	l.Observe(ids[0], 2)
	if called != 2 {
		t.Errorf("callback called %d times, want 2", called)
	}
	if !l.Invocation(ids[0]).Tampered {
		t.Error("callback tampering lost")
	}
}

func TestObserveIntent(t *testing.T) {
	r := MustNewRegistry(testU, nil)
	l := NewLog(r)
	l.ObserveIntent(3, 2)
	l.ObserveIntent(1, 1)
	l.ObserveIntent(3, 1)
	l.ObserveIntent(9, 0) // ignored
	got := l.SentIntents()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("SentIntents = %v", got)
	}
	if l.IntentCount(3) != 3 {
		t.Errorf("IntentCount(3) = %d", l.IntentCount(3))
	}
	// Intent observation costs no hook overhead.
	if l.Intercepted != 0 || l.TotalInvocations != 0 {
		t.Error("intent observation affected API accounting")
	}
}

func TestObserveActivity(t *testing.T) {
	r := MustNewRegistry(testU, nil)
	l := NewLog(r)
	l.ObserveActivity("a.Main")
	l.ObserveActivity("a.Detail")
	if len(l.ReachedActivities) != 2 {
		t.Errorf("ReachedActivities = %v", l.ReachedActivities)
	}
}
