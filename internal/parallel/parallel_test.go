package parallel

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		Run(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	ran := false
	Run(0, 4, func(int) { ran = true })
	Run(-3, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n <= 0")
	}
}

func TestRunBoundsWorkers(t *testing.T) {
	var active, peak int32
	Run(100, 3, func(int) {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
	})
	if p := atomic.LoadInt32(&peak); p > 3 {
		t.Errorf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestRunDeterministicOutputSlots(t *testing.T) {
	const n = 500
	ref := make([]int, n)
	got := make([]int, n)
	Run(n, 1, func(i int) { ref[i] = i * i })
	Run(n, 16, func(i int) { got[i] = i * i })
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, ref[i], got[i])
		}
	}
}
