// Package parallel provides the one bounded-parallel-map primitive every
// fan-out in the system shares: the corpus emulation passes
// (dataset.Corpus), the emulator farm (emulator.Farm), the per-API
// Spearman sweep (features.SelectKeyAPIs) and the market review pool
// (market.ReviewBatch).
//
// The contract is deliberately narrow: indices are dispatched to a bounded
// worker set, fn(i) runs exactly once per index, and Run returns only when
// every call has finished. Determinism is the caller's job — write to
// index i of a pre-sized slice and derive any per-item randomness from i,
// never from scheduling order.
package parallel

import (
	"runtime"
	"sync"
)

// Run invokes fn(i) for every i in [0, n) using at most workers
// goroutines. workers <= 0 selects GOMAXPROCS. fn must be safe to call
// concurrently; Run blocks until all calls return.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
}
