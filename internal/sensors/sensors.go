// Package sensors implements the sensor-trace replay behind the emulator
// hardening's third improvement (§4.2): real smartphones continuously emit
// accelerometer/gyroscope readings with characteristic noise, gravity, and
// motion micro-structure, while stock emulators return constant or zero
// streams — an easy tell for emulator-detecting malware.
//
// Traces are generated once from recordings of "real devices" (here: a
// calibrated synthetic model of resting/handling motion) and replayed into
// the emulated sensor HAL. A replay must be realistic under the checks
// malware actually runs: non-constant output, gravity-magnitude
// plausibility, and bounded jerk.
package sensors

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind is a sensor type.
type Kind uint8

const (
	// Accelerometer measures m/s² including gravity.
	Accelerometer Kind = iota
	// Gyroscope measures rad/s.
	Gyroscope
)

func (k Kind) String() string {
	switch k {
	case Accelerometer:
		return "accelerometer"
	case Gyroscope:
		return "gyroscope"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// gravity is standard gravity in m/s².
const gravity = 9.80665

// Sample is one 3-axis reading.
type Sample struct {
	X, Y, Z float64
	// TimestampMs is milliseconds since trace start.
	TimestampMs int64
}

// Magnitude returns the Euclidean norm.
func (s Sample) Magnitude() float64 {
	return math.Sqrt(s.X*s.X + s.Y*s.Y + s.Z*s.Z)
}

// Trace is a recorded sensor stream at a fixed rate.
type Trace struct {
	Kind    Kind
	RateHz  int
	Samples []Sample
}

// Duration returns the trace length in milliseconds.
func (t *Trace) Duration() int64 {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].TimestampMs
}

// Record synthesizes a trace the way the paper collects them from a fleet
// of real handsets: a resting pose with gravity on a tilted axis, sensor
// noise, slow drift as the holder's hand moves, and occasional micro-jolts.
func Record(kind Kind, rateHz int, durationMs int64, seed int64) (*Trace, error) {
	if rateHz <= 0 || rateHz > 1000 {
		return nil, fmt.Errorf("sensors: rate %d Hz out of range", rateHz)
	}
	if durationMs <= 0 {
		return nil, fmt.Errorf("sensors: duration %d ms must be positive", durationMs)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Kind: kind, RateHz: rateHz}
	stepMs := int64(1000 / rateHz)
	if stepMs == 0 {
		stepMs = 1
	}

	// Resting orientation: gravity split across axes by a random tilt.
	theta := rng.Float64() * math.Pi / 3 // up to 60° tilt
	phi := rng.Float64() * 2 * math.Pi
	gx := gravity * math.Sin(theta) * math.Cos(phi)
	gy := gravity * math.Sin(theta) * math.Sin(phi)
	gz := gravity * math.Cos(theta)

	// Slow hand drift (random walk) plus white noise.
	var dx, dy, dz float64
	noise := 0.03
	drift := 0.004
	if kind == Gyroscope {
		gx, gy, gz = 0, 0, 0 // gyros read ~0 at rest
		noise = 0.01
		drift = 0.002
	}

	for ts := int64(0); ts <= durationMs; ts += stepMs {
		dx += rng.NormFloat64() * drift
		dy += rng.NormFloat64() * drift
		dz += rng.NormFloat64() * drift
		s := Sample{
			X:           gx + dx + rng.NormFloat64()*noise,
			Y:           gy + dy + rng.NormFloat64()*noise,
			Z:           gz + dz + rng.NormFloat64()*noise,
			TimestampMs: ts,
		}
		// Occasional micro-jolt (picking up / tapping the phone).
		if rng.Float64() < 0.002 {
			s.X += rng.NormFloat64() * 0.8
			s.Y += rng.NormFloat64() * 0.8
			s.Z += rng.NormFloat64() * 0.8
		}
		tr.Samples = append(tr.Samples, s)
	}
	return tr, nil
}

// Replayer feeds a trace into the emulated sensor HAL, looping seamlessly.
type Replayer struct {
	trace *Trace
	pos   int
}

// NewReplayer wraps a trace; it must be non-empty.
func NewReplayer(tr *Trace) (*Replayer, error) {
	if tr == nil || len(tr.Samples) == 0 {
		return nil, fmt.Errorf("sensors: empty trace")
	}
	return &Replayer{trace: tr}, nil
}

// Next returns the next reading, looping at the end.
func (r *Replayer) Next() Sample {
	s := r.trace.Samples[r.pos]
	r.pos = (r.pos + 1) % len(r.trace.Samples)
	return s
}

// Take returns the next n readings.
func (r *Replayer) Take(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = r.Next()
	}
	return out
}

// LooksReal runs the checks emulator-detecting malware uses against a
// sensor window (§4.2): constant or all-zero streams, implausible gravity,
// and physically impossible jerk all give an emulator away.
func LooksReal(kind Kind, window []Sample) bool {
	if len(window) < 8 {
		return false
	}
	// 1. Variance: real sensors are never bit-identical across a window.
	distinct := make(map[[3]float64]bool)
	for _, s := range window {
		distinct[[3]float64{s.X, s.Y, s.Z}] = true
	}
	if len(distinct) < len(window)/4 {
		return false
	}
	if kind == Accelerometer {
		// 2. Gravity magnitude plausibility at rest-ish.
		var mean float64
		for _, s := range window {
			mean += s.Magnitude()
		}
		mean /= float64(len(window))
		if mean < 0.5*gravity || mean > 2*gravity {
			return false
		}
	}
	// 3. Bounded jerk: consecutive readings cannot teleport.
	for i := 1; i < len(window); i++ {
		d := math.Abs(window[i].X-window[i-1].X) +
			math.Abs(window[i].Y-window[i-1].Y) +
			math.Abs(window[i].Z-window[i-1].Z)
		if d > 6*gravity {
			return false
		}
	}
	return true
}

// StockEmulatorStream is what an unhardened emulator reports: zeros.
func StockEmulatorStream(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i].TimestampMs = int64(i) * 20
	}
	return out
}
