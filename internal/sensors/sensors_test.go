package sensors

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecordValidation(t *testing.T) {
	if _, err := Record(Accelerometer, 0, 1000, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Record(Accelerometer, 2000, 1000, 1); err == nil {
		t.Error("absurd rate accepted")
	}
	if _, err := Record(Gyroscope, 50, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRecordedTraceShape(t *testing.T) {
	tr, err := Record(Accelerometer, 50, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RateHz != 50 || tr.Kind != Accelerometer {
		t.Errorf("trace header %+v", tr)
	}
	wantSamples := 10000/(1000/50) + 1
	if len(tr.Samples) != wantSamples {
		t.Errorf("samples = %d, want %d", len(tr.Samples), wantSamples)
	}
	if tr.Duration() != 10000 {
		t.Errorf("duration = %d", tr.Duration())
	}
	// Timestamps strictly increase at the configured rate.
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].TimestampMs <= tr.Samples[i-1].TimestampMs {
			t.Fatal("timestamps not increasing")
		}
	}
	// Mean magnitude near gravity.
	var mean float64
	for _, s := range tr.Samples {
		mean += s.Magnitude()
	}
	mean /= float64(len(tr.Samples))
	if math.Abs(mean-gravity) > 1.5 {
		t.Errorf("mean magnitude = %.2f, want ≈ g", mean)
	}
}

func TestGyroTraceRestsNearZero(t *testing.T) {
	tr, err := Record(Gyroscope, 100, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, s := range tr.Samples {
		mean += s.Magnitude()
	}
	mean /= float64(len(tr.Samples))
	if mean > 1.0 {
		t.Errorf("resting gyro magnitude = %.3f", mean)
	}
}

func TestReplayerLoops(t *testing.T) {
	tr, err := Record(Accelerometer, 50, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Samples)
	first := r.Take(n)
	second := r.Take(n)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("replay loop not seamless")
		}
	}
	if _, err := NewReplayer(&Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

// The headline property: replayed traces pass malware's emulator checks;
// stock emulator streams fail them.
func TestReplayDefeatsSensorProbes(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := Record(Accelerometer, 50, 4000, seed)
		if err != nil {
			return false
		}
		r, err := NewReplayer(tr)
		if err != nil {
			return false
		}
		return LooksReal(Accelerometer, r.Take(100))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	if LooksReal(Accelerometer, StockEmulatorStream(100)) {
		t.Error("stock emulator stream passed the realism probe")
	}
	if LooksReal(Accelerometer, nil) {
		t.Error("empty window passed")
	}
}

func TestLooksRealRejectsTeleports(t *testing.T) {
	tr, err := Record(Accelerometer, 50, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	window := append([]Sample(nil), tr.Samples[:50]...)
	window[25].X += 1000 // physically impossible jump
	if LooksReal(Accelerometer, window) {
		t.Error("teleporting stream passed")
	}
}

func TestKindStrings(t *testing.T) {
	if Accelerometer.String() != "accelerometer" || Gyroscope.String() != "gyroscope" {
		t.Error("kind names wrong")
	}
}
