package core

import (
	"errors"

	"apichecker/internal/pipeline"
)

// Typed failure modes of the vetting and model-import paths. The vet-path
// sentinels are defined by internal/pipeline (the stages raise them) and
// aliased here; the public facade re-exports all of them, so downstream
// callers branch with errors.Is instead of matching error strings.
var (
	// ErrBadSubmission marks a Submission that does not carry exactly one
	// payload (raw bytes, parsed APK, or behaviour program).
	ErrBadSubmission = pipeline.ErrBadSubmission

	// ErrUniverseMismatch marks a model import against a framework
	// universe that differs from the exporter's. API ids are
	// universe-relative; importing across universes would silently
	// mis-map every feature.
	ErrUniverseMismatch = errors.New("model universe mismatch")

	// ErrDeadlineExceeded marks a vet abandoned because its per-submission
	// deadline expired. It wraps context.DeadlineExceeded, so both
	// errors.Is(err, ErrDeadlineExceeded) and
	// errors.Is(err, context.DeadlineExceeded) hold on a timed-out vet.
	ErrDeadlineExceeded = pipeline.ErrDeadlineExceeded
)
