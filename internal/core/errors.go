package core

import (
	"context"
	"errors"
	"fmt"
)

// Typed failure modes of the vetting and model-import paths. The public
// facade re-exports these, so downstream callers branch with errors.Is
// instead of matching error strings.
var (
	// ErrBadSubmission marks a Submission that does not carry exactly one
	// payload (raw bytes, parsed APK, or behaviour program).
	ErrBadSubmission = errors.New("submission must carry exactly one of raw bytes, parsed APK, or program")

	// ErrUniverseMismatch marks a model import against a framework
	// universe that differs from the exporter's. API ids are
	// universe-relative; importing across universes would silently
	// mis-map every feature.
	ErrUniverseMismatch = errors.New("model universe mismatch")

	// ErrDeadlineExceeded marks a vet abandoned because its per-submission
	// deadline expired. It wraps context.DeadlineExceeded, so both
	// errors.Is(err, ErrDeadlineExceeded) and
	// errors.Is(err, context.DeadlineExceeded) hold on a timed-out vet.
	ErrDeadlineExceeded = fmt.Errorf("vet deadline exceeded: %w", context.DeadlineExceeded)
)

// vetFailure normalizes an error off the vetting hot path: deadline expiry
// (wherever the emulator noticed it) surfaces as ErrDeadlineExceeded; other
// errors pass through for the caller to wrap.
func vetFailure(err error) error {
	if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadlineExceeded) {
		return fmt.Errorf("%w (%v)", ErrDeadlineExceeded, err)
	}
	return err
}
