package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/pipeline"
	"apichecker/internal/vcache"
)

// testBandLo/Hi is the non-trivial uncertainty band the triage tests run
// under: wide enough that low-confidence apps still pay the full pipeline,
// narrow enough that the trained linear model short-circuits a solid
// majority of the corpus.
const (
	testBandLo = 0.05
	testBandHi = 0.95
)

// tieredAndFlat trains two checkers over identical corpora (same universe,
// same seed) differing only in the configured triage band. Training is
// band-independent, so the trained parts — forest and triage model both —
// are bit-identical; only the serving band differs.
func tieredAndFlat(t *testing.T, n int) (tiered, flat *Checker, corpus *dataset.Corpus) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TriageLo, cfg.TriageHi = testBandLo, testBandHi
	tiered, corpus = trainedCheckerCfg(t, n, cfg)
	flat, _ = trainedCheckerCfg(t, n, DefaultConfig())
	return tiered, flat, corpus
}

// TestTriageTrivialBandBitIdentical: the explicit full band [0, 1] (and
// the zero band) disables the tier, and every verdict — fresh, cached,
// every payload form — is bit-identical to a checker that never heard of
// triage.
func TestTriageTrivialBandBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TriageLo, cfg.TriageHi = 0, 1
	trivial, corpus := trainedCheckerCfg(t, 120, cfg)
	flat, _ := trainedCheckerCfg(t, 120, DefaultConfig())

	p := corpus.Program(3)
	raw, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		s    Submission
	}{
		{"raw", Submission{Raw: raw}},
		{"parsed", Submission{Parsed: parsed}},
		{"program", Submission{Program: corpus.Program(8)}},
	} {
		got, err := trivial.Vet(context.Background(), sub.s)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		want, err := flat.Vet(context.Background(), sub.s)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: trivial-band verdict diverged:\n got  %+v\n want %+v", sub.name, got, want)
		}
		if got.Tier != 2 {
			t.Errorf("%s: trivial-band tier = %d, want 2", sub.name, got.Tier)
		}
		again, out, err := trivial.VetOutcome(context.Background(), sub.s)
		if err != nil {
			t.Fatalf("%s resubmit: %v", sub.name, err)
		}
		if !out.Served() || !reflect.DeepEqual(again, want) {
			t.Errorf("%s: cached trivial-band verdict diverged (outcome %v)", sub.name, out)
		}
	}
	if hits := trivial.Obs().Counter("triage.hit").Load(); hits != 0 {
		t.Errorf("trivial band short-circuited %d submissions", hits)
	}
}

// TestTriageShortCircuitAndBandEquivalence is the tentpole's equivalence
// discipline for a non-trivial band: every in-band (tier-2) verdict is
// bit-identical to the flat checker's, every short-circuited verdict is a
// well-formed tier-1 answer, both tiers actually occur, and cached
// re-answers of tier-1 verdicts survive with their tier intact.
func TestTriageShortCircuitAndBandEquivalence(t *testing.T) {
	tiered, flat, corpus := tieredAndFlat(t, 200)

	var tier1, tier2 int
	firstTier1 := -1
	for i := 0; i < corpus.Len(); i++ {
		sub := Submission{Program: corpus.Program(i)}
		got, err := tiered.Vet(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		switch got.Tier {
		case 2:
			tier2++
			want, err := flat.Vet(context.Background(), sub)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("app %d: in-band verdict diverged from flat checker:\n got  %+v\n want %+v",
					i, got, want)
			}
		case 1:
			tier1++
			if firstTier1 < 0 {
				firstTier1 = i
			}
			if got.Engine != "triage.static" {
				t.Fatalf("app %d: tier-1 engine = %q", i, got.Engine)
			}
			if got.ScanTime <= 0 || got.ScanTime >= time.Millisecond {
				t.Fatalf("app %d: tier-1 scan time = %v, want microseconds", i, got.ScanTime)
			}
			if got.OverallTime != got.ScanTime+pipeline.FixedOverhead {
				t.Fatalf("app %d: tier-1 overall time = %v", i, got.OverallTime)
			}
			if got.Package != corpus.Program(i).PackageName {
				t.Fatalf("app %d: tier-1 package = %q", i, got.Package)
			}
			// The band straddles 0.5, so the malicious call and the logit
			// sign must agree, exactly as they do for forest margins.
			if got.Malicious != (got.Score > 0) {
				t.Fatalf("app %d: tier-1 malicious=%v disagrees with score %v", i, got.Malicious, got.Score)
			}
		default:
			t.Fatalf("app %d: tier = %d", i, got.Tier)
		}
	}
	if tier1 == 0 || tier2 == 0 {
		t.Fatalf("degenerate tier mix: %d tier-1, %d tier-2 — band %v..%v needs tuning",
			tier1, tier2, testBandLo, testBandHi)
	}
	t.Logf("tier mix over %d apps: %d short-circuited, %d emulated", corpus.Len(), tier1, tier2)

	obs := tiered.Obs()
	if hits := obs.Counter("triage.hit").Load(); hits != uint64(tier1) {
		t.Errorf("triage.hit = %d, want %d", hits, tier1)
	}
	if band := obs.Counter("triage.band").Load(); band != uint64(tier2) {
		t.Errorf("triage.band = %d, want %d", band, tier2)
	}

	// A short-circuited submission resubmits as a cache hit with the tier
	// intact — tier-1 verdicts are memoized exactly like tier-2 ones.
	runs0 := emulator.RunCount()
	v, out, err := tiered.VetOutcome(context.Background(), Submission{Program: corpus.Program(firstTier1)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Served() || v.Tier != 1 {
		t.Errorf("tier-1 resubmit: outcome %v, tier %d", out, v.Tier)
	}
	if runs := emulator.RunCount() - runs0; runs != 0 {
		t.Errorf("tier-1 resubmit paid %d emulations", runs)
	}

	// The same archive short-circuits identically as raw bytes and as a
	// parsed APK (same manifest, same probability, same tier) — and the
	// parsed resubmission is a cache hit on the raw submission's digest.
	p := corpus.Program(firstTier1)
	raw, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	rawV, err := tiered.Vet(context.Background(), Submission{Raw: raw})
	if err != nil {
		t.Fatal(err)
	}
	if rawV.Tier != 1 || rawV.MD5 != parsed.MD5 || rawV.Package != p.PackageName {
		t.Errorf("raw tier-1 verdict: %+v", rawV)
	}
	parsedV, out, err := tiered.VetOutcome(context.Background(), Submission{Parsed: parsed})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Served() || !reflect.DeepEqual(parsedV, rawV) {
		t.Errorf("parsed resubmission of raw archive: outcome %v\n got  %+v\n want %+v", out, parsedV, rawV)
	}
}

// TestTriageMeanCostReduction is the perf claim: on a confident-heavy
// submission mix the tiered pipeline's mean virtual scan cost is at least
// 3x below the flat pipeline's. Virtual-clock determinism makes this a
// hard assertion, not a flaky benchmark.
func TestTriageMeanCostReduction(t *testing.T) {
	tiered, flat, corpus := tieredAndFlat(t, 200)

	var tieredTotal, flatTotal time.Duration
	for i := 0; i < corpus.Len(); i++ {
		sub := Submission{Program: corpus.Program(i)}
		tv, err := tiered.Vet(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		fv, err := flat.Vet(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		tieredTotal += tv.ScanTime
		flatTotal += fv.ScanTime
	}
	reduction := float64(flatTotal) / float64(tieredTotal)
	t.Logf("mean scan cost: flat %v, tiered %v — %.1fx reduction",
		flatTotal/time.Duration(corpus.Len()), tieredTotal/time.Duration(corpus.Len()), reduction)
	if reduction < 3 {
		t.Errorf("mean scan-cost reduction = %.2fx, want >= 3x", reduction)
	}
}

// TestTriageSwapAndBandChange: a model swap invalidates tier-1 verdicts
// exactly like tier-2 ones (single epoch bump), and SetTriageBand is a
// full swap — widening the band to trivial turns the tier off for the
// same submission.
func TestTriageSwapAndBandChange(t *testing.T) {
	tiered, _, corpus := tieredAndFlat(t, 200)

	firstTier1 := -1
	for i := 0; i < corpus.Len(); i++ {
		v, err := tiered.Vet(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		if v.Tier == 1 {
			firstTier1 = i
			break
		}
	}
	if firstTier1 < 0 {
		t.Fatal("no submission short-circuited")
	}
	sub := Submission{Program: corpus.Program(firstTier1)}

	// Same parts, new generation: the cached tier-1 verdict must not
	// survive the epoch bump.
	info, err := tiered.SwapModel(tiered.Parts())
	if err != nil {
		t.Fatal(err)
	}
	v, out, err := tiered.VetOutcome(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}
	if out.Served() {
		t.Errorf("tier-1 verdict survived a model swap (outcome %v)", out)
	}
	if v.Tier != 1 || v.Generation != info.ID {
		t.Errorf("post-swap verdict: tier %d generation %d, want tier 1 generation %d", v.Tier, v.Generation, info.ID)
	}

	// Trivial band: the tier goes dark and the very same submission pays
	// the full pipeline.
	if _, err := tiered.SetTriageBand(0, 1); err != nil {
		t.Fatal(err)
	}
	if lo, hi := tiered.TriageBand(); lo != 0 || hi != 1 {
		t.Fatalf("band after SetTriageBand(0,1) = [%v, %v]", lo, hi)
	}
	v, err = tiered.Vet(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tier != 2 {
		t.Errorf("tier after disabling band = %d, want 2", v.Tier)
	}

	for _, bad := range [][2]float64{{-0.1, 0.5}, {0.5, 1.1}, {0.7, 0.3}} {
		if _, err := tiered.SetTriageBand(bad[0], bad[1]); err == nil {
			t.Errorf("SetTriageBand(%v, %v) accepted an invalid band", bad[0], bad[1])
		}
	}
}

// TestTriagePersistWarmStart: tier-1 verdicts ride the persistent
// warm-start tier like any other — a restarted tiered checker answers a
// previously short-circuited submission from the restored snapshot,
// bit-identically, tier intact.
func TestTriagePersistWarmStart(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.VerdictPersistDir = dir
	cfg.TriageLo, cfg.TriageHi = testBandLo, testBandHi
	ck1, corpus := trainedCheckerCfg(t, 200, cfg)

	baseline := make(map[int]*Verdict)
	for i := 0; i < 20; i++ {
		v, err := ck1.Vet(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = v
	}
	if err := ck1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	ck2, err := NewFromParts(ck1.Parts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.ClosePersist()
	if ps := ck2.PersistStats(); ps.Restored != 20 {
		t.Fatalf("restart restored %d entries, want 20: %+v", ps.Restored, ps)
	}
	sawTier1 := false
	for i := 0; i < 20; i++ {
		v, out, err := ck2.VetOutcome(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		if out != vcache.OutcomeHit {
			t.Fatalf("sub %d: restart outcome = %v, want hit", i, out)
		}
		if *v != *baseline[i] {
			t.Fatalf("sub %d: restored verdict differs:\n  before %+v\n  after  %+v", i, *baseline[i], *v)
		}
		if v.Tier == 1 {
			sawTier1 = true
		}
	}
	if !sawTier1 {
		t.Error("no tier-1 verdict among the warm-started 20 — band needs tuning")
	}
}
