package core

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

// Model persistence (§5.4: "large app markets can possibly distribute
// their trained models to smaller markets, who thus do not need to train
// their own models"). Export serializes everything a peer market needs to
// vet submissions — the key-API selection and the trained forest — but not
// the training data. Import reconstructs a Checker against the same
// framework universe (identified by generation config, since API ids are
// universe-relative).

// modelWire is the serialized form.
type modelWire struct {
	FormatVersion int

	// UniverseCfg identifies the framework universe the ids refer to.
	UniverseCfg framework.Config
	UniverseLvl int

	Cfg       Config
	Selection features.Selection
	Forest    *ml.RandomForest
}

// modelFormatVersion guards against incompatible payloads.
const modelFormatVersion = 1

// Export writes the trained model (gob, gzip-compressed).
func (ck *Checker) Export(w io.Writer) error {
	// Snapshot one generation so a concurrent swap cannot tear the export.
	g := ck.gen.Load()
	if g == nil || g.model == nil {
		return fmt.Errorf("core: export: checker has no trained model")
	}
	zw := gzip.NewWriter(w)
	wire := modelWire{
		FormatVersion: modelFormatVersion,
		UniverseCfg:   g.u.Config(),
		UniverseLvl:   g.u.Level(),
		Cfg:           ck.cfg,
		Selection:     *g.selection,
		Forest:        g.model,
	}
	if err := gob.NewEncoder(zw).Encode(&wire); err != nil {
		return fmt.Errorf("core: export: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: export: %w", err)
	}
	return nil
}

// ExportBytes is Export into a byte slice.
func (ck *Checker) ExportBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := ck.Export(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Import reconstructs a Checker from an exported model. The universe must
// match the exporter's (same generation config and SDK level) — API ids
// are universe-relative, so a mismatch would silently mis-map features.
func Import(r io.Reader, u *framework.Universe) (*Checker, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: import: %w", err)
	}
	defer zr.Close()
	var wire modelWire
	if err := gob.NewDecoder(zr).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: import: %w", err)
	}
	if wire.FormatVersion != modelFormatVersion {
		return nil, fmt.Errorf("core: import: format version %d, want %d", wire.FormatVersion, modelFormatVersion)
	}
	if wire.UniverseCfg != u.Config() {
		return nil, fmt.Errorf("core: import: %w: model was trained on a different universe config",
			ErrUniverseMismatch)
	}
	if wire.UniverseLvl != u.Level() {
		return nil, fmt.Errorf("core: import: %w: model expects SDK level %d, universe is at %d",
			ErrUniverseMismatch, wire.UniverseLvl, u.Level())
	}
	if wire.Forest == nil {
		return nil, fmt.Errorf("core: import: payload has no forest")
	}
	ex, err := features.NewExtractor(u, wire.Selection.Keys, wire.Cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("core: import: %w", err)
	}
	return New(u, &wire.Selection, ex, wire.Forest, wire.Cfg)
}

// ImportBytes is Import from a byte slice.
func ImportBytes(data []byte, u *framework.Universe) (*Checker, error) {
	return Import(bytes.NewReader(data), u)
}
