package core

import (
	"sync"
	"sync/atomic"

	"apichecker/internal/ml"
)

// scoreBatcher coalesces concurrent classify steps into blocks scored by
// one forest's tree-major batch inference (ml.RandomForest.ScoreBatch).
// Vetting lanes finishing emulations around the same time share one walk
// over the forest instead of each paying per-row pointer chasing; an
// isolated request degenerates to a one-row block. Safe because
// ScoreBatch is bit-identical to Score row by row — batch composition
// cannot change any verdict.
//
// Each model generation owns its batcher, bound to that generation's
// forest: vets pin a generation before classifying, so a hot-swap can
// never cause a follower's vector to be scored by a different model than
// the one its vet pinned. The block/row totals are checker-level
// cumulative counters shared across generations.
//
// The protocol is leaderless-queue style: requests append to pending
// under the mutex; the first arrival while no leader is active becomes
// the leader and drains pending in blocks (dropping the lock around each
// ScoreBatch call) until the queue is empty, completing followers as
// their rows are scored.
type scoreBatcher struct {
	mu      sync.Mutex
	leading bool
	pending []*scoreReq

	model *ml.RandomForest

	blocks *atomic.Uint64 // ScoreBatch calls issued (checker-cumulative)
	rows   *atomic.Uint64 // vectors scored through them
}

type scoreReq struct {
	x     ml.Vector
	score float64
	done  chan struct{}
}

// score classifies one vector through the batcher.
func (b *scoreBatcher) score(x ml.Vector) float64 {
	req := &scoreReq{x: x, done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, req)
	if b.leading {
		b.mu.Unlock()
		<-req.done
		return req.score
	}
	b.leading = true
	for {
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()

		xs := make([]ml.Vector, len(batch))
		for i, r := range batch {
			xs[i] = r.x
		}
		scores := b.model.ScoreBatch(xs, nil)
		for i, r := range batch {
			r.score = scores[i]
			close(r.done)
		}
		b.blocks.Add(1)
		b.rows.Add(uint64(len(batch)))

		b.mu.Lock()
		if len(b.pending) == 0 {
			b.leading = false
			b.mu.Unlock()
			// The leader's own request was in the first block it drained.
			return req.score
		}
	}
}

// ScoreBlocks reports how many forest-inference blocks the checker has
// issued and the total vectors scored through them, cumulative across
// model generations; rows > blocks means concurrent classify steps were
// coalesced into multi-row blocks.
func (ck *Checker) ScoreBlocks() (blocks, rows uint64) {
	return ck.scoreBlocks.Load(), ck.scoreRows.Load()
}
