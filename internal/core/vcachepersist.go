package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"apichecker/internal/pipeline"
	"apichecker/internal/vcache"
)

// Persistent verdict-cache wiring: the optional file-backed tier under the
// in-memory cache (Config.VerdictPersistDir). Entries are the same flat
// EncodeEntry buffers the live cache stores, appended write-through as
// verdicts are memoized and replayed on the next start — so a restarted
// serving node warm-starts its hit rate instead of re-emulating everything
// it had already answered.
//
// The tier is keyed by the serving model's identity: the generation's
// artifact digest when it has one (the modelstore/lifecycle paths always
// set it), otherwise a fingerprint of the deterministic model export. A
// snapshot recorded under any other model is discarded wholesale at open,
// and SwapModel resets the log exactly like it bumps the in-memory epoch —
// a persisted verdict can no more outlive its model than a cached one.

// attachPersist opens (or creates) the persist log, replays a matching
// snapshot into the live cache, and taps the cache's store hook for
// write-through appends. Called once from NewWithDigest, before the
// checker is published.
func (ck *Checker) attachPersist(dir string) error {
	if ck.cache == nil {
		return fmt.Errorf("core: VerdictPersistDir requires the verdict cache (VerdictCache >= 0)")
	}
	key, err := ck.persistGenKey()
	if err != nil {
		return fmt.Errorf("core: persist generation key: %w", err)
	}
	bad := 0
	p, restored, skipped, err := vcache.OpenPersist(dir, key, ck.cache.Epoch(), func(k string, v []byte) {
		// Replay defensively: an entry that does not decode (a layout
		// change between binaries, say) must not enter the serving cache.
		if _, derr := pipeline.DecodeCachedVerdict(v); derr != nil {
			bad++
			return
		}
		ck.cache.Put(k, v)
	})
	if err != nil {
		return fmt.Errorf("core: verdict persist: %w", err)
	}
	ck.persist = p
	// Compaction source: the live cache's current-generation entries, so a
	// long-lived generation's log stays bounded by what the cache actually
	// holds instead of accreting every re-store of an evicted key.
	p.EnableCompaction(func(emit func(key string, val []byte)) {
		ck.cache.Range(func(k string, v []byte) bool {
			emit(k, v)
			return true
		})
	})
	// Tap installed only after replay, so restoring entries does not
	// re-append them to the log they came from.
	appendErrors := ck.obs.Counter("vcache.persist.append_errors")
	ck.cache.OnStore(func(k string, v []byte, epoch uint64) {
		// The disk tier is an optimization — the in-memory cache stays
		// authoritative — so a failed append never fails the store; but it
		// must be visible, or a full disk disables warm-start persistence
		// silently behind an Enabled=true stats row.
		if err := p.AppendCurrent(k, v, epoch); err != nil {
			appendErrors.Inc()
		}
	})
	ck.obs.Counter("vcache.persist.restored").Add(uint64(restored - bad))
	ck.obs.Counter("vcache.persist.skipped").Add(uint64(skipped + bad))
	return nil
}

// AttachPersist enables the file-backed verdict tier on a checker built
// without Config.VerdictPersistDir — the cold-start path, where the model
// registry instantiates the checker before the caller knows whether
// persistence is wanted. Call it before the checker starts serving; it
// errors if a tier is already attached or the verdict cache is disabled.
func (ck *Checker) AttachPersist(dir string) error {
	if ck.persist != nil {
		return fmt.Errorf("core: verdict persistence already attached")
	}
	return ck.attachPersist(dir)
}

// persistGenKey derives the identity the persisted tier is keyed by. The
// generation digest is preferred (content address of the persisted
// artifact); a generation trained in-process and never snapshotted falls
// back to hashing its deterministic export, which identifies the trained
// parts just as stably.
func (ck *Checker) persistGenKey() (string, error) {
	if d := ck.gen.Load().digest; d != "" {
		return "model:" + d, nil
	}
	data, err := ck.ExportBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "export:" + hex.EncodeToString(sum[:]), nil
}

// resetPersist re-keys the persist log for the newly swapped-in
// generation, discarding every persisted verdict — SwapModel's on-disk
// mirror of InvalidateVerdicts. Best effort: a failed reset disables
// appends for the stale epoch anyway (AppendCurrent's epoch gate), so
// stale entries still cannot land.
func (ck *Checker) resetPersist() {
	if ck.persist == nil {
		return
	}
	key, err := ck.persistGenKey()
	if err != nil {
		ck.obs.Counter("vcache.persist.reset_errors").Inc()
		return
	}
	if err := ck.persist.Reset(key, ck.cacheEpoch()); err != nil {
		ck.obs.Counter("vcache.persist.reset_errors").Inc()
	}
}

// PersistStats reports the persistent-tier counters; Enabled is false (and
// everything zero) when no persist directory was configured.
type PersistStats struct {
	Enabled bool
	// Restored counts entries replayed into the live cache at open (the
	// warm-start hits); Skipped counts records dropped at open as torn,
	// corrupt, or undecodable (the warm-start misses).
	Restored uint64
	Skipped  uint64
	// Appends counts write-through records since open; AppendErrors counts
	// appends that failed (full disk, permissions) — persistence is
	// silently degraded while it grows, the in-memory cache is unaffected.
	// Resets counts lifecycle re-keys.
	Appends      uint64
	AppendErrors uint64
	Resets       uint64
	// Compactions counts log rewrites bounding on-disk growth to the live
	// cache contents; CompactErrors counts failed rewrite attempts.
	Compactions   uint64
	CompactErrors uint64
}

// PersistStats snapshots the persistent verdict-tier counters.
func (ck *Checker) PersistStats() PersistStats {
	if ck.persist == nil {
		return PersistStats{}
	}
	c := ck.persist.Counters()
	return PersistStats{
		Enabled:       true,
		Restored:      ck.obs.Counter("vcache.persist.restored").Load(),
		Skipped:       ck.obs.Counter("vcache.persist.skipped").Load(),
		Appends:       c.Appends,
		AppendErrors:  ck.obs.Counter("vcache.persist.append_errors").Load(),
		Resets:        c.Resets,
		Compactions:   c.Compactions,
		CompactErrors: c.CompactErrors,
	}
}

// ClosePersist flushes and closes the persistent verdict tier, if any.
// The checker remains fully serviceable; further stores simply stop being
// persisted.
func (ck *Checker) ClosePersist() error {
	if ck.persist == nil {
		return nil
	}
	return ck.persist.Close()
}
