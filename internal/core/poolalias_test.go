package core

import (
	"context"
	"sync"
	"testing"

	"apichecker/internal/pipeline"
)

// TestPoolReuseNoAliasing: with release-time poisoning on, recycled
// VetContext storage is scribbled over the moment a vet returns — so any
// verdict, span, or cached entry still aliasing pooled memory shows up as
// poisoned data (or a -race report) instead of passing silently. Duplicate
// submissions vetted concurrently exercise all three cache paths (miss,
// coalesced, hit), and every verdict must stay bit-identical to the
// pool-free legacy baseline.
func TestPoolReuseNoAliasing(t *testing.T) {
	pipeline.PoisonReleased.Store(true)
	t.Cleanup(func() { pipeline.PoisonReleased.Store(false) })

	ck, corpus := trainedChecker(t, 300)

	const nProgs, dupes = 4, 8
	baseline := make([]*Verdict, nProgs)
	for i := range baseline {
		baseline[i] = legacyVet(t, ck, Submission{Program: corpus.Program(i)})
	}

	got := make([][]*Verdict, nProgs)
	var wg sync.WaitGroup
	for i := 0; i < nProgs; i++ {
		got[i] = make([]*Verdict, dupes)
		for d := 0; d < dupes; d++ {
			wg.Add(1)
			go func(i, d int) {
				defer wg.Done()
				v, _, err := ck.VetOutcome(context.Background(), Submission{Program: corpus.Program(i)})
				if err != nil {
					t.Error(err)
					return
				}
				got[i][d] = v
			}(i, d)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 0; i < nProgs; i++ {
		for d := 0; d < dupes; d++ {
			if *got[i][d] != *baseline[i] {
				t.Fatalf("prog %d dupe %d: verdict diverged from pool-free baseline:\n  legacy %+v\n  pooled %+v",
					i, d, *baseline[i], *got[i][d])
			}
		}
	}

	// A second pass over the same digests lands every vet on the decode-
	// from-cache hit path, with the previous pass's poisoned contexts now
	// circulating in the pool.
	for i := 0; i < nProgs; i++ {
		v, err := ck.Vet(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		if *v != *baseline[i] {
			t.Fatalf("prog %d: hit-path verdict diverged after pool recycling:\n  legacy %+v\n  pooled %+v",
				i, *baseline[i], *v)
		}
	}
}
