package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"apichecker/internal/adb"
	"apichecker/internal/apk"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
	"apichecker/internal/pipeline"
)

// trainedCheckerCfg is trainedChecker with a caller-shaped config.
func trainedCheckerCfg(t *testing.T, n int, cfg Config) (*Checker, *dataset.Corpus) {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.NumApps = n
	corpus, err := dataset.Generate(testU, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, _, err := TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ck, corpus
}

// legacyVet reproduces the pre-pipeline monolithic vet path from the
// checker's trained parts: derive the content-seeded Monkey config,
// emulate (full adb sequence for raw archives, bare engine otherwise),
// extract, classify. It shares no code with the staged pipeline, so
// agreement is evidence the refactor preserved the computation, not just
// that both call the same function.
func legacyVet(t *testing.T, ck *Checker, sub Submission) *Verdict {
	t.Helper()
	dig := (&sub).ContentDigest()
	if dig == "" {
		t.Fatal("legacyVet: undigestable submission")
	}
	cfg := ck.Config()
	mkc := monkey.ProductionConfig(cfg.Seed ^ int64(pipeline.DigestSeed(dig)))
	mkc.Events = cfg.Events

	reg, err := hook.NewRegistry(ck.Universe(), ck.Selection().Keys)
	if err != nil {
		t.Fatal(err)
	}

	if sub.Raw != nil {
		sess := adb.NewSession(adb.NewDevice("emulator-5554", cfg.Profile, reg))
		vr, err := sess.Vet(sub.Raw, mkc)
		if err != nil {
			t.Fatal(err)
		}
		x, err := ck.Extractor().Vector(vr.Run.Log, vr.APK.Manifest)
		if err != nil {
			t.Fatal(err)
		}
		return legacyVerdict(ck, vr.APK.PackageName(), vr.APK.VersionCode(), vr.APK.MD5, vr.Run, x)
	}

	p := sub.Program
	var man *manifest.Manifest
	md5 := ""
	if sub.Parsed != nil {
		p = sub.Parsed.Program
		man = sub.Parsed.Manifest
		md5 = sub.Parsed.MD5
	}
	res, err := emulator.New(cfg.Profile, reg).Run(p, mkc)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil {
		man, err = p.Manifest(ck.Universe())
		if err != nil {
			t.Fatal(err)
		}
	}
	x, err := ck.Extractor().Vector(res.Log, man)
	if err != nil {
		t.Fatal(err)
	}
	return legacyVerdict(ck, p.PackageName, p.Version, md5, res, x)
}

func legacyVerdict(ck *Checker, pkg string, version int, md5 string, res *emulator.Result, x ml.Vector) *Verdict {
	score := ck.Model().Score(x)
	return &Verdict{
		Package:        pkg,
		VersionCode:    version,
		MD5:            md5,
		Generation:     ck.Generation().ID,
		Malicious:      score > 0,
		Score:          score,
		Tier:           2,
		ScanTime:       res.VirtualTime,
		OverallTime:    res.VirtualTime + pipeline.FixedOverhead,
		FellBack:       res.FellBack,
		Crashes:        res.Crashed,
		Engine:         res.Profile,
		InvokedKeyAPIs: res.Log.DistinctInvoked(),
	}
}

// TestPipelineMatchesLegacyVet is the refactor's equivalence proof: for
// every payload form (raw archive, parsed APK, bare program), with the
// verdict cache enabled and disabled, the staged pipeline's verdict is
// bit-identical to an independent replica of the monolithic path it
// replaced — and with the cache on, the cached re-answer is too.
func TestPipelineMatchesLegacyVet(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cache int
	}{
		{"cache-on", 0},
		{"cache-off", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.VerdictCache = tc.cache
			ck, corpus := trainedCheckerCfg(t, 120, cfg)
			p := corpus.Program(5)
			raw, parsed, err := apk.BuildAndParse(p, testU)
			if err != nil {
				t.Fatal(err)
			}

			for _, sub := range []struct {
				name string
				s    Submission
			}{
				{"raw", Submission{Raw: raw}},
				{"parsed", Submission{Parsed: parsed}},
				{"program", Submission{Program: corpus.Program(7)}},
			} {
				got, err := ck.Vet(context.Background(), sub.s)
				if err != nil {
					t.Fatalf("%s: %v", sub.name, err)
				}
				want := legacyVet(t, ck, sub.s)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: pipeline verdict diverged from legacy path:\n got  %+v\n want %+v",
						sub.name, got, want)
				}
				// Resubmission: with the cache on this is a hit; either way
				// the verdict must not change.
				again, out, err := ck.VetOutcome(context.Background(), sub.s)
				if err != nil {
					t.Fatalf("%s resubmit: %v", sub.name, err)
				}
				if !reflect.DeepEqual(again, want) {
					t.Errorf("%s: resubmitted verdict diverged from legacy path", sub.name)
				}
				if tc.cache == 0 && !out.Served() {
					t.Errorf("%s: resubmission outcome = %v, want cache-served", sub.name, out)
				}
				if tc.cache < 0 && out.Served() {
					t.Errorf("%s: disabled cache served outcome %v", sub.name, out)
				}
			}
		})
	}
}

// TestDeadlineAttributedToStage pins the stage attribution of vet
// failures: a submission whose context is already dead dies in the
// emulate stage (the first stage that honours the context), and an
// invalid submission dies at admission.
func TestDeadlineAttributedToStage(t *testing.T) {
	ck, corpus := trainedChecker(t, 120)

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := ck.Vet(ctx, Submission{Program: corpus.Program(0)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Vet(expired) = %v, want ErrDeadlineExceeded", err)
	}
	if stage, ok := pipeline.FailedStage(err); !ok || stage != pipeline.StageEmulate {
		t.Errorf("expired vet attributed to %q/%v, want %q", stage, ok, pipeline.StageEmulate)
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	_, err = ck.Vet(canceled, Submission{Program: corpus.Program(0)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Vet(canceled) = %v, want context.Canceled", err)
	}
	if stage, _ := pipeline.FailedStage(err); stage != pipeline.StageEmulate {
		t.Errorf("canceled vet attributed to %q, want %q", stage, pipeline.StageEmulate)
	}

	_, err = ck.Vet(context.Background(), Submission{})
	if !errors.Is(err, ErrBadSubmission) {
		t.Fatalf("Vet(empty) = %v, want ErrBadSubmission", err)
	}
	if stage, _ := pipeline.FailedStage(err); stage != pipeline.StageAdmit {
		t.Errorf("invalid submission attributed to %q, want %q", stage, pipeline.StageAdmit)
	}
}

// TestCancelledVetsReturnFarmLanes: abandoned vets must return their
// emulator lane to the checker's farm — a leak would wedge the serving
// lanes behind cancelled submissions. Run under -race in CI.
func TestCancelledVetsReturnFarmLanes(t *testing.T) {
	ck, corpus := trainedChecker(t, 120)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 0 {
				ctx = canceled
			}
			_, err := ck.Vet(ctx, Submission{Program: corpus.Program(i % corpus.Len())})
			if i%2 == 0 && !errors.Is(err, context.Canceled) {
				t.Errorf("vet %d: err = %v, want context.Canceled", i, err)
			}
			if i%2 == 1 && err != nil {
				t.Errorf("vet %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	farm := ck.gen.Load().farm
	if free, lanes := farm.FreeLanes(), farm.Lanes(); free != lanes {
		t.Fatalf("farm has %d/%d free lanes after cancellation churn — slot leak", free, lanes)
	}
	if _, err := ck.Vet(context.Background(), Submission{Program: corpus.Program(1)}); err != nil {
		t.Fatalf("vet after churn: %v", err)
	}
}

// TestStageStatsCoverChain: after a vet, the checker's obs spine has one
// span per executed stage, in chain order, with the emulate stage showing
// the dominant virtual latency.
func TestStageStatsCoverChain(t *testing.T) {
	ck, corpus := trainedChecker(t, 120)
	v, err := ck.Vet(context.Background(), Submission{Program: corpus.Program(2)})
	if err != nil {
		t.Fatal(err)
	}
	stats := ck.StageStats()
	byName := map[string]int{}
	for i, st := range stats {
		byName[st.Stage] = i
		if st.Count != 1 {
			t.Errorf("stage %s count = %d, want 1", st.Stage, st.Count)
		}
	}
	for _, want := range []string{
		pipeline.StageAdmit, pipeline.StageCacheLookup, pipeline.StageTriage,
		pipeline.StageDecode, pipeline.StageEmulate, pipeline.StageExtract,
		pipeline.StageInfer,
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("stage %s missing from StageStats", want)
		}
	}
	emu := stats[byName[pipeline.StageEmulate]]
	if got := time.Duration(emu.Dur.P50 * float64(time.Second)); got != v.ScanTime {
		t.Errorf("emulate span p50 = %v, want the verdict's ScanTime %v", got, v.ScanTime)
	}
}
