package core

import (
	"context"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
)

// The pre-Submission vetting entrypoints, kept for callers that predate
// the canonical Vet(ctx, Submission) surface. Each is a thin shim; none
// add behaviour.

// VetAPK vets a serialized APK archive through the full device sequence:
// install on an idle emulator, exercise, record, uninstall, clear
// residual data (§4.2). The device is guaranteed clean afterwards.
//
// Deprecated: use Vet with a Submission carrying Raw.
func (ck *Checker) VetAPK(data []byte) (*Verdict, error) {
	return ck.Vet(context.Background(), Submission{Raw: data})
}

// VetAPKWithRun is VetAPK, additionally returning the raw emulation result
// (the input to analysis-log export).
//
// Deprecated: use VetRun with a Submission carrying Raw.
func (ck *Checker) VetAPKWithRun(data []byte) (*Verdict, *emulator.Result, error) {
	return ck.VetRun(context.Background(), Submission{Raw: data})
}

// VetProgram vets an app given its behaviour program directly (the market
// simulation path, where building megabytes of zip per app would only slow
// experiments down).
//
// Deprecated: use Vet with a Submission carrying Program.
func (ck *Checker) VetProgram(p *behavior.Program) (*Verdict, error) {
	return ck.Vet(context.Background(), Submission{Program: p})
}

// VetProgramSeq vets a behaviour program under an explicit vet sequence
// number (previously reserved via ReserveVetSeqs).
//
// Deprecated: use Vet with a Submission carrying Program and Seq.
func (ck *Checker) VetProgramSeq(p *behavior.Program, seq int64) (*Verdict, error) {
	return ck.Vet(context.Background(), Submission{Program: p, Seq: seq})
}

// VetParsed vets a parsed APK (or, with parsed == nil, a bare program).
//
// Deprecated: use Vet with a Submission carrying Parsed or Program.
func (ck *Checker) VetParsed(p *behavior.Program, parsed *apk.APK) (*Verdict, error) {
	if parsed != nil {
		return ck.Vet(context.Background(), Submission{Parsed: parsed})
	}
	return ck.Vet(context.Background(), Submission{Program: p})
}
