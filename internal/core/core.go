// Package core is APICHECKER: the ML-powered malware vetting pipeline the
// paper deploys at T-Market (§5). A Checker owns the selected key-API set,
// the hook registry, the emulation engine, the feature extractor, and the
// trained random-forest model; Vet takes a submitted APK through
// install → Monkey exercise → hooked dynamic analysis → feature
// extraction → classification.
//
// Since the pipeline refactor the vet path itself lives in
// internal/pipeline as an explicit chain of typed stages (Admit →
// CacheLookup → Decode → Emulate → ExtractFeatures → Infer); the Checker
// is the assembly that wires those stages to its trained parts, and
// Vet/VetOutcome/VetRun are drivers over the assembled chains. Per-stage
// spans and counters land on the checker's obs.Collector.
//
// TrainFromCorpus reproduces the offline study pipeline (§4): measure API
// usage over the labelled corpus tracking everything, select the key APIs
// (Set-C ∪ Set-P ∪ Set-S), build A+P+I vectors, and train the classifier.
// Retrain implements the monthly model-evolution loop (§5.3).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/adb"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/ml"
	"apichecker/internal/obs"
	"apichecker/internal/pipeline"
	"apichecker/internal/vcache"
)

// Submission, Verdict and the cached-verdict record are defined by the
// pipeline package (the stages operate on them directly); core aliases
// them so the public surface is unchanged by the refactor.
type (
	// Submission is one vetting request for the canonical Vet entrypoint.
	Submission = pipeline.Submission
	// Verdict is the outcome of vetting one submission.
	Verdict = pipeline.Verdict
)

// Config holds the deployment configuration.
type Config struct {
	// Events per Monkey exercise (paper: 5,000 ≈ 126 s base).
	Events int
	// Mode is the feature combination (deployed: A+P+I).
	Mode features.Mode
	// Selection tunes key-API selection.
	Selection features.SelectionConfig
	// Profile is the emulation engine (deployed: lightweight x86).
	Profile emulator.Profile
	// Forest configures the classifier.
	Forest ml.ForestConfig
	// Seed drives everything stochastic.
	Seed int64

	// VerdictCache bounds the digest-keyed verdict-memoization layer on
	// the serving path (entries, across all shards). 0 selects
	// vcache.DefaultCapacity; negative disables memoization entirely, so
	// every Vet pays a fresh emulation. Cached verdicts are bit-identical
	// to uncached ones (Monkey seeds derive from the content digest), so
	// the cache is semantically invisible either way.
	VerdictCache int

	// Lanes bounds concurrent program/parsed emulations (the per-server
	// emulator-farm gate). 0 selects emulator.ProductionLanes.
	Lanes int
}

// DefaultConfig is the production configuration from the paper.
func DefaultConfig() Config {
	return Config{
		Events:    5000,
		Mode:      features.ModeAPI,
		Selection: features.DefaultSelectionConfig(),
		Profile:   emulator.LightweightEmulator,
		Forest:    ml.DefaultForestConfig(1),
		Seed:      1,
	}
}

// Checker is a trained vetting pipeline.
type Checker struct {
	cfg Config
	u   *framework.Universe

	selection *features.Selection
	extractor *features.Extractor
	registry  *hook.Registry
	emu       *emulator.Emulator
	model     *ml.RandomForest

	// farm gates program/parsed emulations behind the server's lane
	// slots; a cancelled vet returns its lane (never leaks an emulator).
	farm *emulator.Farm

	// session is the adb control plane used for real APK submissions
	// (install → Monkey → logs → uninstall → clear, §4.2). It drives one
	// device, so concurrent raw-archive vets serialize on sessionMu;
	// program/parsed vets bypass the device and fan out over farm lanes.
	session   *adb.Session
	sessionMu sync.Mutex

	// cache memoizes complete verdicts (plus their feature vectors) by
	// content digest, with singleflight dedupe of concurrent identical
	// submissions; nil when cfg.VerdictCache < 0. Retrain advances its
	// epoch so no verdict from a previous model generation is ever served.
	cache *vcache.Cache[pipeline.CachedVerdict]

	// obs is the checker's observability spine: one span per completed
	// pipeline stage, plus the emulator-reliability and verdict-cache
	// counters. vetPipe is the canonical serving chain; runPipe the
	// always-emulate chain VetRun drives.
	obs     *obs.Collector
	vetPipe *pipeline.Pipeline
	runPipe *pipeline.Pipeline

	// scores coalesces concurrent classify steps into blocks for the
	// forest's tree-major batch inference.
	scores scoreBatcher

	vetCount int64
}

// TrainReport summarizes a training (or retraining) round.
type TrainReport struct {
	KeyAPIs    int
	SetC       int
	SetP       int
	SetS       int
	Features   int
	TrainTime  time.Duration
	UsageTime  time.Duration // corpus measurement pass
	CorpusSize int

	// EmulationRuns counts emulator executions this round paid for; with
	// the run cache warmable single-pass pipeline this is the corpus size
	// (plus fallback re-runs), not twice it.
	EmulationRuns int64
}

// TrainFromCorpus builds a Checker from a labelled corpus in a single
// emulation pass: the §4.3 measurement pass tracks every hookable API, and
// because a full-tracking log is a strict superset of any key-API log, the
// A+P+I training vectors are projected from the retained measurement
// results instead of re-emulating the corpus under the selected keys (the
// pre-cache pipeline emulated twice). Training vectors therefore come from
// the hardened study engine the ground-truth logs were collected on, as in
// the paper's offline study; cfg.Profile selects the engine submissions
// are vetted on.
func TrainFromCorpus(c *dataset.Corpus, cfg Config) (*Checker, *TrainReport, error) {
	if cfg.Events <= 0 {
		return nil, nil, fmt.Errorf("core: events must be positive")
	}
	rep := &TrainReport{CorpusSize: c.Len()}
	runs0 := emulator.RunCount()

	start := time.Now()
	usage, _, err := c.CollectUsage(cfg.Events)
	if err != nil {
		return nil, nil, fmt.Errorf("core: usage collection: %w", err)
	}
	rep.UsageTime = time.Since(start)

	sel := features.SelectKeyAPIs(c.Universe(), usage, cfg.Selection)
	rep.SetC, rep.SetP, rep.SetS = len(sel.SetC), len(sel.SetP), len(sel.SetS)
	rep.KeyAPIs = len(sel.Keys)

	ex, err := features.NewExtractor(c.Universe(), sel.Keys, cfg.Mode)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	rep.Features = ex.NumFeatures()

	d, err := c.VectorizeMeasured(ex, cfg.Events)
	if err != nil {
		return nil, nil, fmt.Errorf("core: vectorize: %w", err)
	}
	rep.EmulationRuns = emulator.RunCount() - runs0

	fc := cfg.Forest
	fc.Seed = cfg.Seed
	model := ml.NewRandomForest(fc)
	start = time.Now()
	if err := model.Train(d); err != nil {
		return nil, nil, fmt.Errorf("core: train: %w", err)
	}
	rep.TrainTime = time.Since(start)

	ck, err := New(c.Universe(), sel, ex, model, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ck, rep, nil
}

// New assembles a Checker from trained parts (used by TrainFromCorpus and
// by markets loading a distributed model, §5.4): it builds the hook
// registry, the emulation engine and its lane farm, the adb session, the
// verdict cache, the obs collector, and wires them into the vet and run
// stage chains.
func New(u *framework.Universe, sel *features.Selection, ex *features.Extractor,
	model *ml.RandomForest, cfg Config) (*Checker, error) {
	reg, err := hook.NewRegistry(u, sel.Keys)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	emu := emulator.New(cfg.Profile, reg)
	lanes := cfg.Lanes
	if lanes <= 0 {
		lanes = emulator.ProductionLanes
	}
	farm, err := emulator.NewFarm(emu, lanes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ck := &Checker{
		cfg:       cfg,
		u:         u,
		selection: sel,
		extractor: ex,
		registry:  reg,
		emu:       emu,
		farm:      farm,
		session:   adb.NewSession(adb.NewDevice("emulator-5554", cfg.Profile, reg)),
		model:     model,
		obs:       obs.NewCollector(),
	}
	if cfg.VerdictCache >= 0 {
		ck.cache = vcache.NewObserved[pipeline.CachedVerdict](cfg.VerdictCache, ck.obs)
	}
	ck.buildPipelines()
	return ck, nil
}

// buildPipelines assembles the vet and run stage chains over the checker's
// obs collector. Deps read the checker's fields through accessors, so a
// Retrain that swaps the engine, extractor, or model in place is picked up
// by the next submission without rebuilding the chains.
func (ck *Checker) buildPipelines() {
	trees := ck.cfg.Forest.Trees
	if trees <= 0 {
		trees = ml.DefaultForestConfig(ck.cfg.Seed).Trees
	}
	d := &pipeline.Deps{
		Universe:  func() *framework.Universe { return ck.u },
		Extractor: func() *features.Extractor { return ck.extractor },
		Farm:      func() *emulator.Farm { return ck.farm },
		RunRaw:    ck.runRaw,
		Score:     ck.score,
		Cache:     func() *vcache.Cache[pipeline.CachedVerdict] { return ck.cache },
		NextSeq:   ck.nextVetSeq,
		Obs:       ck.obs,
		Events:    ck.cfg.Events,
		Seed:      ck.cfg.Seed,
		Trees:     trees,
	}
	ck.vetPipe = pipeline.VetChain(ck.obs, d)
	ck.runPipe = pipeline.RunChain(ck.obs, d)
}

// runRaw drives a decoded raw archive through the adb device sequence
// (install → Monkey → logs → uninstall → clear). The checker owns one
// device, so raw submissions serialize here.
func (ck *Checker) runRaw(vc *pipeline.VetContext) (*adb.VetResult, error) {
	ck.sessionMu.Lock()
	defer ck.sessionMu.Unlock()
	return ck.session.VetParsedContext(vc.Ctx, vc.Parsed, vc.Monkey)
}

// Universe returns the framework universe.
func (ck *Checker) Universe() *framework.Universe { return ck.u }

// Selection returns the current key-API selection.
func (ck *Checker) Selection() *features.Selection { return ck.selection }

// Extractor returns the feature extractor.
func (ck *Checker) Extractor() *features.Extractor { return ck.extractor }

// Model returns the trained forest.
func (ck *Checker) Model() *ml.RandomForest { return ck.model }

// Config returns the deployment config.
func (ck *Checker) Config() Config { return ck.cfg }

// Obs returns the checker's observability collector: per-stage spans and
// latency distributions, verdict-cache counters, and emulator-reliability
// counters. Attach a sink to stream per-submission span events.
func (ck *Checker) Obs() *obs.Collector { return ck.obs }

// StageStats summarizes per-stage span accounting (count, errors, and
// virtual-latency quantiles) in first-seen stage order.
func (ck *Checker) StageStats() []obs.StageStats { return ck.obs.StageStats() }

// PipelineStages returns the canonical vet chain's stage names in order.
func (ck *Checker) PipelineStages() []string { return ck.vetPipe.Stages() }

// Vet is the single canonical vetting entrypoint: every other Vet* method
// is a thin wrapper over it. The context bounds the emulation — a deadline
// or cancellation aborts the run at the next crash-restart or event-batch
// boundary, surfacing as an error wrapping ErrDeadlineExceeded (and
// context.DeadlineExceeded) or context.Canceled; pipeline.FailedStage
// reports which stage the vet died in. Safe for concurrent use: the
// emulator, extractor and model are read-only at vet time, program/parsed
// submissions fan out over farm lanes, and raw archive submissions
// serialize on the checker's single adb session.
//
// Vet consults the digest-keyed verdict cache first: a byte-identical
// resubmission is answered without re-emulating, and N concurrent
// submissions of the same digest trigger exactly one emulation (the rest
// block on the leader's result). Cached verdicts are bit-identical to
// emulated ones because the Monkey seed derives from the content digest.
func (ck *Checker) Vet(ctx context.Context, sub Submission) (*Verdict, error) {
	v, _, err := ck.VetOutcome(ctx, sub)
	return v, err
}

// VetOutcome is Vet, additionally reporting how the verdict was served:
// OutcomeMiss (this call paid the emulation), OutcomeHit (answered from
// the cache), OutcomeCoalesced (deduplicated onto a concurrent identical
// submission), or OutcomeBypass (cache disabled or payload undigestable).
func (ck *Checker) VetOutcome(ctx context.Context, sub Submission) (*Verdict, vcache.Outcome, error) {
	vc := &pipeline.VetContext{Ctx: ctx, Sub: &sub}
	if err := ck.vetPipe.Run(vc); err != nil {
		return nil, vc.Outcome, ck.vetError(vc, err)
	}
	return vc.Verdict, vc.Outcome, nil
}

// VetTrace is VetOutcome, additionally returning the per-stage span log
// for this submission (one obs event per completed stage, in execution
// order) — the cmd/tmarket -trace feed.
func (ck *Checker) VetTrace(ctx context.Context, sub Submission) (*Verdict, vcache.Outcome, []obs.Event, error) {
	vc := &pipeline.VetContext{Ctx: ctx, Sub: &sub}
	if err := ck.vetPipe.Run(vc); err != nil {
		return nil, vc.Outcome, vc.Spans, ck.vetError(vc, err)
	}
	return vc.Verdict, vc.Outcome, vc.Spans, nil
}

// VetRun is Vet, additionally returning the raw emulation result (the
// input to analysis-log export). It always emulates — the result is the
// point — but writes the verdict through to the cache so subsequent Vets
// of the same content are served without re-running.
func (ck *Checker) VetRun(ctx context.Context, sub Submission) (*Verdict, *emulator.Result, error) {
	vc := &pipeline.VetContext{Ctx: ctx, Sub: &sub}
	if err := ck.runPipe.Run(vc); err != nil {
		return nil, nil, ck.vetError(vc, err)
	}
	return vc.Verdict, vc.Run, nil
}

// vetError shapes a pipeline failure for the public surface: admission
// failures (ErrBadSubmission) pass through exactly as Validate raised
// them; everything else is wrapped with the vet prefix and the submission
// label. The stage attribution survives — pipeline.FailedStage still
// reports the dying stage through the wrap.
func (ck *Checker) vetError(vc *pipeline.VetContext, err error) error {
	if errors.Is(err, ErrBadSubmission) {
		return err
	}
	return fmt.Errorf("core: vet %s: %w", vc.PackageLabel(), err)
}

// VetCount returns how many submissions the checker has vetted (or has
// reserved sequence numbers for).
func (ck *Checker) VetCount() int64 { return atomic.LoadInt64(&ck.vetCount) }

// ReserveVetSeqs atomically reserves n consecutive vet sequence numbers
// and returns the first. Parallel review pools reserve up front and assign
// sequences by queue position, so service logs and metrics identify
// submissions the way a serial review would have numbered them. (Verdicts
// themselves no longer depend on sequence numbers — the Monkey seed
// derives from the content digest; see pipeline.Deps.MonkeyFor.)
func (ck *Checker) ReserveVetSeqs(n int) int64 {
	return atomic.AddInt64(&ck.vetCount, int64(n)) - int64(n) + 1
}

// nextVetSeq reserves the next single sequence number.
func (ck *Checker) nextVetSeq() int64 { return atomic.AddInt64(&ck.vetCount, 1) }

// InvalidateVerdicts drops every memoized verdict by advancing the
// cache's model-generation epoch; Retrain calls it when the model swaps.
// In-flight emulations complete but their verdicts are not stored.
func (ck *Checker) InvalidateVerdicts() {
	if ck.cache != nil {
		ck.cache.BumpEpoch()
	}
}

// CacheStats snapshots the verdict-cache counters; the zero Stats when
// the cache is disabled.
func (ck *Checker) CacheStats() vcache.Stats {
	if ck.cache == nil {
		return vcache.Stats{}
	}
	return ck.cache.Stats()
}
