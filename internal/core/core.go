// Package core is APICHECKER: the ML-powered malware vetting pipeline the
// paper deploys at T-Market (§5). A Checker owns the selected key-API set,
// the hook registry, the emulation engine, the feature extractor, and the
// trained random-forest model; Vet takes a submitted APK through
// install → Monkey exercise → hooked dynamic analysis → feature
// extraction → classification.
//
// TrainFromCorpus reproduces the offline study pipeline (§4): measure API
// usage over the labelled corpus tracking everything, select the key APIs
// (Set-C ∪ Set-P ∪ Set-S), build A+P+I vectors, and train the classifier.
// Retrain implements the monthly model-evolution loop (§5.3).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/adb"
	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/manifest"
	"apichecker/internal/ml"
	"apichecker/internal/monkey"
	"apichecker/internal/vcache"
)

// Config holds the deployment configuration.
type Config struct {
	// Events per Monkey exercise (paper: 5,000 ≈ 126 s base).
	Events int
	// Mode is the feature combination (deployed: A+P+I).
	Mode features.Mode
	// Selection tunes key-API selection.
	Selection features.SelectionConfig
	// Profile is the emulation engine (deployed: lightweight x86).
	Profile emulator.Profile
	// Forest configures the classifier.
	Forest ml.ForestConfig
	// Seed drives everything stochastic.
	Seed int64

	// VerdictCache bounds the digest-keyed verdict-memoization layer on
	// the serving path (entries, across all shards). 0 selects
	// vcache.DefaultCapacity; negative disables memoization entirely, so
	// every Vet pays a fresh emulation. Cached verdicts are bit-identical
	// to uncached ones (Monkey seeds derive from the content digest), so
	// the cache is semantically invisible either way.
	VerdictCache int
}

// DefaultConfig is the production configuration from the paper.
func DefaultConfig() Config {
	return Config{
		Events:    5000,
		Mode:      features.ModeAPI,
		Selection: features.DefaultSelectionConfig(),
		Profile:   emulator.LightweightEmulator,
		Forest:    ml.DefaultForestConfig(1),
		Seed:      1,
	}
}

// Checker is a trained vetting pipeline.
type Checker struct {
	cfg Config
	u   *framework.Universe

	selection *features.Selection
	extractor *features.Extractor
	registry  *hook.Registry
	emu       *emulator.Emulator
	model     *ml.RandomForest

	// session is the adb control plane used for real APK submissions
	// (install → Monkey → logs → uninstall → clear, §4.2). It drives one
	// device, so concurrent raw-archive vets serialize on sessionMu;
	// program/parsed vets bypass the device and fan out freely.
	session   *adb.Session
	sessionMu sync.Mutex

	// cache memoizes complete verdicts (plus their feature vectors) by
	// content digest, with singleflight dedupe of concurrent identical
	// submissions; nil when cfg.VerdictCache < 0. Retrain advances its
	// epoch so no verdict from a previous model generation is ever served.
	cache *vcache.Cache[cachedVerdict]

	// scores coalesces concurrent classify steps into blocks for the
	// forest's tree-major batch inference.
	scores scoreBatcher

	vetCount int64
}

// cachedVerdict is one memoized vet: the full verdict plus the feature
// vector it was scored on, so a cached answer carries everything an
// emulated one does. The Verdict lives here by value — Vet hands each
// caller its own copy.
type cachedVerdict struct {
	verdict Verdict
	vector  ml.Vector
}

// TrainReport summarizes a training (or retraining) round.
type TrainReport struct {
	KeyAPIs    int
	SetC       int
	SetP       int
	SetS       int
	Features   int
	TrainTime  time.Duration
	UsageTime  time.Duration // corpus measurement pass
	CorpusSize int

	// EmulationRuns counts emulator executions this round paid for; with
	// the run cache warmable single-pass pipeline this is the corpus size
	// (plus fallback re-runs), not twice it.
	EmulationRuns int64
}

// TrainFromCorpus builds a Checker from a labelled corpus in a single
// emulation pass: the §4.3 measurement pass tracks every hookable API, and
// because a full-tracking log is a strict superset of any key-API log, the
// A+P+I training vectors are projected from the retained measurement
// results instead of re-emulating the corpus under the selected keys (the
// pre-cache pipeline emulated twice). Training vectors therefore come from
// the hardened study engine the ground-truth logs were collected on, as in
// the paper's offline study; cfg.Profile selects the engine submissions
// are vetted on.
func TrainFromCorpus(c *dataset.Corpus, cfg Config) (*Checker, *TrainReport, error) {
	if cfg.Events <= 0 {
		return nil, nil, fmt.Errorf("core: events must be positive")
	}
	rep := &TrainReport{CorpusSize: c.Len()}
	runs0 := emulator.RunCount()

	start := time.Now()
	usage, _, err := c.CollectUsage(cfg.Events)
	if err != nil {
		return nil, nil, fmt.Errorf("core: usage collection: %w", err)
	}
	rep.UsageTime = time.Since(start)

	sel := features.SelectKeyAPIs(c.Universe(), usage, cfg.Selection)
	rep.SetC, rep.SetP, rep.SetS = len(sel.SetC), len(sel.SetP), len(sel.SetS)
	rep.KeyAPIs = len(sel.Keys)

	ex, err := features.NewExtractor(c.Universe(), sel.Keys, cfg.Mode)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	rep.Features = ex.NumFeatures()

	d, err := c.VectorizeMeasured(ex, cfg.Events)
	if err != nil {
		return nil, nil, fmt.Errorf("core: vectorize: %w", err)
	}
	rep.EmulationRuns = emulator.RunCount() - runs0

	fc := cfg.Forest
	fc.Seed = cfg.Seed
	model := ml.NewRandomForest(fc)
	start = time.Now()
	if err := model.Train(d); err != nil {
		return nil, nil, fmt.Errorf("core: train: %w", err)
	}
	rep.TrainTime = time.Since(start)

	ck, err := New(c.Universe(), sel, ex, model, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ck, rep, nil
}

// New assembles a Checker from trained parts (used by TrainFromCorpus and
// by markets loading a distributed model, §5.4).
func New(u *framework.Universe, sel *features.Selection, ex *features.Extractor,
	model *ml.RandomForest, cfg Config) (*Checker, error) {
	reg, err := hook.NewRegistry(u, sel.Keys)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ck := &Checker{
		cfg:       cfg,
		u:         u,
		selection: sel,
		extractor: ex,
		registry:  reg,
		emu:       emulator.New(cfg.Profile, reg),
		session:   adb.NewSession(adb.NewDevice("emulator-5554", cfg.Profile, reg)),
		model:     model,
	}
	if cfg.VerdictCache >= 0 {
		ck.cache = vcache.New[cachedVerdict](cfg.VerdictCache)
	}
	return ck, nil
}

// Universe returns the framework universe.
func (ck *Checker) Universe() *framework.Universe { return ck.u }

// Selection returns the current key-API selection.
func (ck *Checker) Selection() *features.Selection { return ck.selection }

// Extractor returns the feature extractor.
func (ck *Checker) Extractor() *features.Extractor { return ck.extractor }

// Model returns the trained forest.
func (ck *Checker) Model() *ml.RandomForest { return ck.model }

// Config returns the deployment config.
func (ck *Checker) Config() Config { return ck.cfg }

// Verdict is the outcome of vetting one submission.
type Verdict struct {
	Package     string
	VersionCode int
	MD5         string

	Malicious bool
	// Score is the model margin (> 0 ⇒ malicious); magnitude is
	// confidence.
	Score float64

	// ScanTime is the virtual dynamic-analysis time; OverallTime adds
	// the fixed install/queue overhead (§5.2 reports 1.92 min overall,
	// 1.4 min analysis).
	ScanTime    time.Duration
	OverallTime time.Duration

	// FellBack reports the app was incompatible with the lightweight
	// engine and re-ran on the stock engine.
	FellBack bool

	// Crashes counts transient emulator crashes detected (and restarted
	// through) during this vet; Engine names the profile that produced
	// the final log. Together with FellBack these surface the §5.1
	// reliability accounting per submission.
	Crashes int
	Engine  string

	// InvokedKeyAPIs counts distinct key APIs observed; "barely uses
	// key APIs" (§5.2's false-negative analysis) shows up here.
	InvokedKeyAPIs int
}

// fixedOverhead is the non-analysis cost per submission: download,
// install, emulator recycle, result logging (§5.2: 1.92 min overall vs
// 1.4 min analysis at production load).
const fixedOverhead = 31 * time.Second

// Submission is one vetting request for the canonical Vet entrypoint. It
// carries exactly one payload:
//
//   - Raw: a serialized APK archive, vetted through the full adb device
//     sequence (install → Monkey → logs → uninstall → clear, §4.2);
//   - Parsed: an already-parsed APK (skips re-parsing the archive);
//   - Program: behaviour semantics directly (the market-simulation path,
//     where building megabytes of zip per app would only slow things down).
//
// Seq optionally pins the vet sequence number (reserved up front via
// ReserveVetSeqs); 0 assigns the next one. Sequence numbers identify
// submissions in service logs and metrics; verdicts do not depend on them
// — the per-submission Monkey seed derives from the content digest, so a
// given archive exercises identically however often, in whatever order,
// and on whatever lane it is submitted. That content-determinism is what
// makes parallel service vetting bit-identical to a serial loop, and
// cached verdicts bit-identical to emulated ones.
//
// Digest optionally pins the content digest (hex sha256 of the canonical
// payload bytes); leave it empty and ContentDigest derives it.
type Submission struct {
	Raw     []byte
	Parsed  *apk.APK
	Program *behavior.Program
	Seq     int64
	Digest  string
}

// Validate checks the exactly-one-payload invariant; violations wrap
// ErrBadSubmission.
func (s Submission) Validate() error {
	n := 0
	if s.Raw != nil {
		n++
	}
	if s.Parsed != nil {
		n++
	}
	if s.Program != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("core: %w (got %d)", ErrBadSubmission, n)
	}
	return nil
}

// ContentDigest returns the submission's content digest — the verdict-
// cache key and Monkey-seed source: hex sha256 of the raw archive bytes
// (Raw), the digest computed at parse time (Parsed), or the canonical
// encoding of the behaviour program (Program). The result is memoized in
// Digest. Empty when the payload cannot be digested; such submissions
// bypass the verdict cache.
func (s *Submission) ContentDigest() string {
	if s.Digest != "" {
		return s.Digest
	}
	switch {
	case s.Raw != nil:
		s.Digest = apk.Digest(s.Raw)
	case s.Parsed != nil:
		s.Digest = s.Parsed.SHA256
	case s.Program != nil:
		if data, err := s.Program.Encode(); err == nil {
			s.Digest = apk.Digest(data)
		}
	}
	return s.Digest
}

// PackageName names the submission for logs and error messages, best
// effort (a raw archive is unnamed until parsed).
func (s Submission) PackageName() string {
	switch {
	case s.Parsed != nil:
		return s.Parsed.PackageName()
	case s.Program != nil:
		return s.Program.PackageName
	default:
		return "(raw archive)"
	}
}

// Vet is the single canonical vetting entrypoint: every other Vet* method
// is a thin wrapper over it. The context bounds the emulation — a deadline
// or cancellation aborts the run at the next crash-restart or event-batch
// boundary, surfacing as an error wrapping ErrDeadlineExceeded (and
// context.DeadlineExceeded) or context.Canceled. Safe for concurrent use:
// the emulator, extractor and model are read-only at vet time, and raw
// archive submissions serialize on the checker's single adb session.
//
// Vet consults the digest-keyed verdict cache first: a byte-identical
// resubmission is answered without re-emulating, and N concurrent
// submissions of the same digest trigger exactly one emulation (the rest
// block on the leader's result). Cached verdicts are bit-identical to
// emulated ones because the Monkey seed derives from the content digest.
func (ck *Checker) Vet(ctx context.Context, sub Submission) (*Verdict, error) {
	v, _, err := ck.VetOutcome(ctx, sub)
	return v, err
}

// VetOutcome is Vet, additionally reporting how the verdict was served:
// OutcomeMiss (this call paid the emulation), OutcomeHit (answered from
// the cache), OutcomeCoalesced (deduplicated onto a concurrent identical
// submission), or OutcomeBypass (cache disabled or payload undigestable).
func (ck *Checker) VetOutcome(ctx context.Context, sub Submission) (*Verdict, vcache.Outcome, error) {
	if err := sub.Validate(); err != nil {
		return nil, vcache.OutcomeBypass, err
	}
	dig := sub.ContentDigest()
	if ck.cache == nil || dig == "" {
		v, _, _, err := ck.vetFull(ctx, sub, dig)
		return v, vcache.OutcomeBypass, err
	}
	e, out, err := ck.cache.Do(ctx, dig, func() (cachedVerdict, error) {
		v, x, _, err := ck.vetFull(ctx, sub, dig)
		if err != nil {
			return cachedVerdict{}, err
		}
		return cachedVerdict{verdict: *v, vector: x}, nil
	})
	if err != nil {
		return nil, out, err
	}
	v := e.verdict
	return &v, out, nil
}

// VetRun is Vet, additionally returning the raw emulation result (the
// input to analysis-log export). It always emulates — the result is the
// point — but writes the verdict through to the cache so subsequent Vets
// of the same content are served without re-running.
func (ck *Checker) VetRun(ctx context.Context, sub Submission) (*Verdict, *emulator.Result, error) {
	if err := sub.Validate(); err != nil {
		return nil, nil, err
	}
	dig := sub.ContentDigest()
	v, x, res, err := ck.vetFull(ctx, sub, dig)
	if err != nil {
		return nil, nil, err
	}
	if ck.cache != nil && dig != "" {
		ck.cache.Put(dig, cachedVerdict{verdict: *v, vector: x})
	}
	return v, res, nil
}

// vetFull is the uncached vet: emulate, extract, classify. The caller has
// validated the submission and resolved its content digest.
func (ck *Checker) vetFull(ctx context.Context, sub Submission, dig string) (*Verdict, ml.Vector, *emulator.Result, error) {
	seq := sub.Seq
	if seq == 0 {
		seq = ck.nextVetSeq()
	}
	mk := ck.vetMonkey(dig, seq)
	if sub.Raw != nil {
		return ck.vetRaw(ctx, sub.Raw, mk)
	}

	p := sub.Program
	var man *manifest.Manifest
	var md5 string
	if sub.Parsed != nil {
		p = sub.Parsed.Program
		man = sub.Parsed.Manifest
		md5 = sub.Parsed.MD5
	}
	res, err := ck.emu.RunContext(ctx, p, mk)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: vet %s: %w", p.PackageName, vetFailure(err))
	}
	if man == nil {
		m, err := p.Manifest(ck.u)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: vet %s: %w", p.PackageName, err)
		}
		man = m
	}
	x, err := ck.extractor.Vector(res.Log, man)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: vet %s: %w", p.PackageName, err)
	}
	return ck.verdict(p.PackageName, p.Version, md5, res, x), x, res, nil
}

// vetRaw runs a serialized archive through the full device sequence.
func (ck *Checker) vetRaw(ctx context.Context, data []byte, mk monkey.Config) (*Verdict, ml.Vector, *emulator.Result, error) {
	ck.sessionMu.Lock()
	vr, err := ck.session.VetContext(ctx, data, mk)
	ck.sessionMu.Unlock()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: vet: %w", vetFailure(err))
	}
	x, err := ck.extractor.Vector(vr.Run.Log, vr.APK.Manifest)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: vet %s: %w", vr.APK.PackageName(), err)
	}
	return ck.verdict(vr.APK.PackageName(), vr.APK.VersionCode(), vr.APK.MD5, vr.Run, x), x, vr.Run, nil
}

// verdict scores a feature vector and books the emulation accounting.
// Scoring goes through the coalescing batcher: classify steps arriving
// concurrently are folded into one tree-major ScoreBatch block.
func (ck *Checker) verdict(pkg string, version int, md5 string, res *emulator.Result, x ml.Vector) *Verdict {
	score := ck.score(x)
	return &Verdict{
		Package:        pkg,
		VersionCode:    version,
		MD5:            md5,
		Malicious:      score > 0,
		Score:          score,
		ScanTime:       res.VirtualTime,
		OverallTime:    res.VirtualTime + fixedOverhead,
		FellBack:       res.FellBack,
		Crashes:        res.Crashed,
		Engine:         res.Profile,
		InvokedKeyAPIs: res.Log.DistinctInvoked(),
	}
}

// VetAPK vets a serialized APK archive through the full device sequence:
// install on an idle emulator, exercise, record, uninstall, clear
// residual data (§4.2). The device is guaranteed clean afterwards.
//
// Deprecated: use Vet with a Submission carrying Raw.
func (ck *Checker) VetAPK(data []byte) (*Verdict, error) {
	return ck.Vet(context.Background(), Submission{Raw: data})
}

// VetCount returns how many submissions the checker has vetted (or has
// reserved sequence numbers for).
func (ck *Checker) VetCount() int64 { return atomic.LoadInt64(&ck.vetCount) }

// ReserveVetSeqs atomically reserves n consecutive vet sequence numbers
// and returns the first. Parallel review pools reserve up front and assign
// sequences by queue position, so service logs and metrics identify
// submissions the way a serial review would have numbered them. (Verdicts
// themselves no longer depend on sequence numbers — see vetMonkey.)
func (ck *Checker) ReserveVetSeqs(n int) int64 {
	return atomic.AddInt64(&ck.vetCount, int64(n)) - int64(n) + 1
}

// nextVetSeq reserves the next single sequence number.
func (ck *Checker) nextVetSeq() int64 { return atomic.AddInt64(&ck.vetCount, 1) }

// vetMonkey derives the Monkey configuration for one submission. The seed
// mixes the deployment seed with the content digest, so a given archive
// is exercised identically however often — and in whatever order — it is
// submitted. That content-determinism is what makes a cached verdict
// bit-identical to the emulation it memoizes, and parallel service lanes
// bit-identical to a serial vet loop. A submission with no digest (an
// undigestable payload) falls back to the sequence-derived seed.
func (ck *Checker) vetMonkey(dig string, seq int64) monkey.Config {
	seed := ck.cfg.Seed ^ seq<<7
	if dig != "" {
		seed = ck.cfg.Seed ^ int64(digestSeed(dig))
	}
	mk := monkey.ProductionConfig(seed)
	mk.Events = ck.cfg.Events
	return mk
}

// digestSeed folds a hex content digest into 64 bits (FNV-1a).
func digestSeed(dig string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(dig); i++ {
		h = (h ^ uint64(dig[i])) * 1099511628211
	}
	return h
}

// InvalidateVerdicts drops every memoized verdict by advancing the
// cache's model-generation epoch; Retrain calls it when the model swaps.
// In-flight emulations complete but their verdicts are not stored.
func (ck *Checker) InvalidateVerdicts() {
	if ck.cache != nil {
		ck.cache.BumpEpoch()
	}
}

// CacheStats snapshots the verdict-cache counters; the zero Stats when
// the cache is disabled.
func (ck *Checker) CacheStats() vcache.Stats {
	if ck.cache == nil {
		return vcache.Stats{}
	}
	return ck.cache.Stats()
}

// VetAPKWithRun is VetAPK, additionally returning the raw emulation result
// (the input to analysis-log export).
//
// Deprecated: use VetRun with a Submission carrying Raw.
func (ck *Checker) VetAPKWithRun(data []byte) (*Verdict, *emulator.Result, error) {
	return ck.VetRun(context.Background(), Submission{Raw: data})
}

// VetProgram vets an app given its behaviour program directly (the market
// simulation path, where building megabytes of zip per app would only slow
// experiments down).
//
// Deprecated: use Vet with a Submission carrying Program.
func (ck *Checker) VetProgram(p *behavior.Program) (*Verdict, error) {
	return ck.Vet(context.Background(), Submission{Program: p})
}

// VetProgramSeq vets a behaviour program under an explicit vet sequence
// number (previously reserved via ReserveVetSeqs).
//
// Deprecated: use Vet with a Submission carrying Program and Seq.
func (ck *Checker) VetProgramSeq(p *behavior.Program, seq int64) (*Verdict, error) {
	return ck.Vet(context.Background(), Submission{Program: p, Seq: seq})
}

// VetParsed vets a parsed APK (or, with parsed == nil, a bare program).
//
// Deprecated: use Vet with a Submission carrying Parsed or Program.
func (ck *Checker) VetParsed(p *behavior.Program, parsed *apk.APK) (*Verdict, error) {
	if parsed != nil {
		return ck.Vet(context.Background(), Submission{Parsed: parsed})
	}
	return ck.Vet(context.Background(), Submission{Program: p})
}
