// Package core is APICHECKER: the ML-powered malware vetting pipeline the
// paper deploys at T-Market (§5). A Checker owns the selected key-API set,
// the hook registry, the emulation engine, the feature extractor, and the
// trained random-forest model; Vet takes a submitted APK through
// install → Monkey exercise → hooked dynamic analysis → feature
// extraction → classification.
//
// Since the pipeline refactor the vet path itself lives in
// internal/pipeline as an explicit chain of typed stages (Admit →
// CacheLookup → Decode → Emulate → ExtractFeatures → Infer); the Checker
// is the assembly that wires those stages to its trained parts, and
// Vet/VetOutcome/VetRun are drivers over the assembled chains. Per-stage
// spans and counters land on the checker's obs.Collector.
//
// TrainFromCorpus reproduces the offline study pipeline (§4): measure API
// usage over the labelled corpus tracking everything, select the key APIs
// (Set-C ∪ Set-P ∪ Set-S), build A+P+I vectors, and train the classifier.
// Retrain implements the monthly model-evolution loop (§5.3).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"apichecker/internal/adb"
	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/features"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/ml"
	"apichecker/internal/obs"
	"apichecker/internal/pipeline"
	"apichecker/internal/vcache"
)

// Submission, Verdict and the cached-verdict record are defined by the
// pipeline package (the stages operate on them directly); core aliases
// them so the public surface is unchanged by the refactor.
type (
	// Submission is one vetting request for the canonical Vet entrypoint.
	Submission = pipeline.Submission
	// Verdict is the outcome of vetting one submission.
	Verdict = pipeline.Verdict
)

// Config holds the deployment configuration.
type Config struct {
	// Events per Monkey exercise (paper: 5,000 ≈ 126 s base).
	Events int
	// Mode is the feature combination (deployed: A+P+I).
	Mode features.Mode
	// Selection tunes key-API selection.
	Selection features.SelectionConfig
	// Profile is the emulation engine (deployed: lightweight x86).
	Profile emulator.Profile
	// Forest configures the classifier.
	Forest ml.ForestConfig
	// Seed drives everything stochastic.
	Seed int64

	// VerdictCache bounds the digest-keyed verdict-memoization layer on
	// the serving path (entries, across all shards). 0 selects
	// vcache.DefaultCapacity; negative disables memoization entirely, so
	// every Vet pays a fresh emulation. Cached verdicts are bit-identical
	// to uncached ones (Monkey seeds derive from the content digest), so
	// the cache is semantically invisible either way.
	VerdictCache int

	// VerdictPersistDir enables the file-backed warm-start tier under the
	// verdict cache: memoized verdicts are appended to an epoch-keyed log
	// in this directory and replayed on the next start if the serving
	// model is unchanged, so a restarted node resumes its hit rate without
	// re-emulating. Empty disables persistence; requires VerdictCache >= 0.
	VerdictPersistDir string

	// Lanes bounds concurrent program/parsed emulations (the per-server
	// emulator-farm gate). 0 selects emulator.ProductionLanes.
	Lanes int

	// TriageLo and TriageHi bound the tier-1 triage uncertainty band in
	// probability space: a submission whose static manifest-only triage
	// probability falls strictly outside [TriageLo, TriageHi] is answered
	// with a tier-1 verdict and never emulated; anything in the band pays
	// the full pipeline. The zero band (0, 0) means "not configured" and
	// disables the tier, as does the explicit full band [0, 1] — with
	// either, every verdict is bit-identical to a checker without triage.
	//
	// Tagged artifact:"-": the band travels in the APKMODEL artifact's
	// optional triage section alongside the triage model itself, so
	// artifacts written before the tier existed decode unchanged.
	TriageLo float64 `artifact:"-"`
	TriageHi float64 `artifact:"-"`
}

// triageBand normalizes the configured band: the zero band selects the
// trivial [0, 1], which disables the tier.
func (c Config) triageBand() (lo, hi float64) {
	if c.TriageLo == 0 && c.TriageHi == 0 {
		return 0, 1
	}
	return c.TriageLo, c.TriageHi
}

// checkTriageBand validates a probability-space uncertainty band.
func checkTriageBand(lo, hi float64) error {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 1 || lo > hi {
		return fmt.Errorf("core: invalid triage band [%g, %g]: need 0 <= lo <= hi <= 1", lo, hi)
	}
	return nil
}

// DefaultConfig is the production configuration from the paper.
func DefaultConfig() Config {
	return Config{
		Events:    5000,
		Mode:      features.ModeAPI,
		Selection: features.DefaultSelectionConfig(),
		Profile:   emulator.LightweightEmulator,
		Forest:    ml.DefaultForestConfig(1),
		Seed:      1,
	}
}

// Checker is a trained vetting pipeline. Its trained parts — universe,
// key-API selection, extractor, hook registry, emulation lanes, and forest
// — live together in one immutable generation behind an atomic pointer;
// SwapModel replaces the whole set in a single pointer flip, so in-flight
// vets finish on the generation they pinned while new submissions pick up
// the replacement.
type Checker struct {
	cfg Config

	// gen is the serving model generation. Vets pin it once per
	// submission (in the Decode stage, inside the cache singleflight) and
	// never look back; SwapModel is the only writer, serialized on swapMu.
	gen    atomic.Pointer[generation]
	swapMu sync.Mutex

	// cache memoizes complete verdicts (plus their feature vectors) by
	// content digest, with singleflight dedupe of concurrent identical
	// submissions; nil when cfg.VerdictCache < 0. SwapModel advances its
	// epoch so no verdict from a previous model generation is ever served.
	// Entries are flat pipeline.EncodeEntry buffers, so a million cached
	// verdicts are a million GC-opaque byte slices, not pointer graphs.
	cache *vcache.Cache[[]byte]

	// persist is the optional file-backed warm-start tier under the cache;
	// nil unless cfg.VerdictPersistDir is set.
	persist *vcache.PersistLog

	// obs is the checker's observability spine: one span per completed
	// pipeline stage, plus the emulator-reliability and verdict-cache
	// counters and the model.generation gauge. vetPipe is the canonical
	// serving chain; runPipe the always-emulate chain VetRun drives.
	obs     *obs.Collector
	vetPipe *pipeline.Pipeline
	runPipe *pipeline.Pipeline

	// Cumulative forest-inference block accounting across generations
	// (each generation's batcher books into these).
	scoreBlocks atomic.Uint64
	scoreRows   atomic.Uint64

	vetCount int64
}

// generation is one immutable trained assembly: everything a vet touches
// after pinning. Nothing here is mutated once the generation is published;
// the only internal state is the session mutex and the score batcher's
// queue, both owned by this generation alone.
type generation struct {
	id     uint64
	digest string

	u         *framework.Universe
	selection *features.Selection
	extractor *features.Extractor
	registry  *hook.Registry
	emu       *emulator.Emulator
	model     *ml.RandomForest
	triage    *ml.Linear

	// farm gates program/parsed emulations behind the server's lane
	// slots; a cancelled vet returns its lane (never leaks an emulator).
	farm *emulator.Farm

	// session is the adb control plane used for real APK submissions
	// (install → Monkey → logs → uninstall → clear, §4.2). It drives one
	// device, so concurrent raw-archive vets serialize on sessionMu;
	// program/parsed vets bypass the device and fan out over farm lanes.
	session   *adb.Session
	sessionMu sync.Mutex

	// scores coalesces concurrent classify steps into blocks for this
	// generation's forest (batch composition cannot change any verdict, so
	// the batcher must never mix models).
	scores scoreBatcher

	// mg is the stage-facing view the pipeline pins.
	mg *pipeline.ModelGen

	swappedAt time.Time
}

// info summarizes the generation for the public surface.
func (g *generation) info() GenerationInfo {
	return GenerationInfo{
		ID:        g.id,
		Digest:    g.digest,
		SwappedAt: g.swappedAt,
		KeyAPIs:   len(g.selection.Keys),
	}
}

// GenerationInfo identifies the serving model generation.
type GenerationInfo struct {
	// ID is the swap counter: 1 for a freshly assembled checker,
	// incremented by every SwapModel. Verdicts carry the ID of the
	// generation that produced them.
	ID uint64
	// Digest is the content digest of the generation's persisted artifact
	// (empty when the generation was never snapshotted or loaded).
	Digest string
	// SwappedAt is when this generation started serving.
	SwappedAt time.Time
	// KeyAPIs is the size of the generation's key-API selection.
	KeyAPIs int
}

// ModelParts is a complete set of trained parts for SwapModel (and the
// constructors): the universe the ids refer to, the key-API selection, the
// extractor built over it, and the trained forest. Digest optionally
// records the artifact digest the parts were loaded from.
type ModelParts struct {
	Universe  *framework.Universe
	Selection *features.Selection
	Extractor *features.Extractor
	Model     *ml.RandomForest
	Digest    string

	// Triage is the tier-1 manifest-only linear scorer, trained alongside
	// the forest over the same corpus and promoted/rolled back with it —
	// the two models are one generation and swap in a single pointer flip.
	// nil disables the tier regardless of the configured band.
	Triage *ml.Linear
}

// TrainReport summarizes a training (or retraining) round.
type TrainReport struct {
	KeyAPIs    int
	SetC       int
	SetP       int
	SetS       int
	Features   int
	TrainTime  time.Duration
	UsageTime  time.Duration // corpus measurement pass
	CorpusSize int

	// EmulationRuns counts emulator executions this round paid for; with
	// the run cache warmable single-pass pipeline this is the corpus size
	// (plus fallback re-runs), not twice it.
	EmulationRuns int64
}

// TrainFromCorpus builds a Checker from a labelled corpus in a single
// emulation pass: the §4.3 measurement pass tracks every hookable API, and
// because a full-tracking log is a strict superset of any key-API log, the
// A+P+I training vectors are projected from the retained measurement
// results instead of re-emulating the corpus under the selected keys (the
// pre-cache pipeline emulated twice). Training vectors therefore come from
// the hardened study engine the ground-truth logs were collected on, as in
// the paper's offline study; cfg.Profile selects the engine submissions
// are vetted on.
func TrainFromCorpus(c *dataset.Corpus, cfg Config) (*Checker, *TrainReport, error) {
	parts, rep, err := trainParts(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	ck, err := NewFromParts(parts, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ck, rep, nil
}

// trainParts runs the full §4 study pipeline over a labelled corpus and
// returns the trained parts without assembling a checker — the shared body
// of TrainFromCorpus (fresh checker) and Retrain (hot-swap into a serving
// one).
func trainParts(c *dataset.Corpus, cfg Config) (ModelParts, *TrainReport, error) {
	if cfg.Events <= 0 {
		return ModelParts{}, nil, fmt.Errorf("core: events must be positive")
	}
	rep := &TrainReport{CorpusSize: c.Len()}
	runs0 := emulator.RunCount()

	start := time.Now()
	usage, _, err := c.CollectUsage(cfg.Events)
	if err != nil {
		return ModelParts{}, nil, fmt.Errorf("core: usage collection: %w", err)
	}
	rep.UsageTime = time.Since(start)

	sel := features.SelectKeyAPIs(c.Universe(), usage, cfg.Selection)
	rep.SetC, rep.SetP, rep.SetS = len(sel.SetC), len(sel.SetP), len(sel.SetS)
	rep.KeyAPIs = len(sel.Keys)

	ex, err := features.NewExtractor(c.Universe(), sel.Keys, cfg.Mode)
	if err != nil {
		return ModelParts{}, nil, fmt.Errorf("core: %w", err)
	}
	rep.Features = ex.NumFeatures()

	d, err := c.VectorizeMeasured(ex, cfg.Events)
	if err != nil {
		return ModelParts{}, nil, fmt.Errorf("core: vectorize: %w", err)
	}
	rep.EmulationRuns = emulator.RunCount() - runs0

	fc := cfg.Forest
	fc.Seed = cfg.Seed
	model := ml.NewRandomForest(fc)
	start = time.Now()
	if err := model.Train(d); err != nil {
		return ModelParts{}, nil, fmt.Errorf("core: train: %w", err)
	}
	rep.TrainTime = time.Since(start)

	triage, err := trainTriage(c, cfg)
	if err != nil {
		return ModelParts{}, nil, err
	}

	return ModelParts{Universe: c.Universe(), Selection: sel, Extractor: ex, Model: model, Triage: triage}, rep, nil
}

// trainTriage fits the tier-1 linear scorer over the corpus's manifest-only
// P+I view — exactly the view the triage stage scores at serving time (no
// hook log, no dex, no emulation). Trained unconditionally: the model is
// cheap, travels with the generation, and serves only when a non-trivial
// band is configured.
func trainTriage(c *dataset.Corpus, cfg Config) (*ml.Linear, error) {
	tex, err := features.NewTriageExtractor(c.Universe())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	td := ml.NewDataset(tex.NumFeatures())
	for i := 0; i < c.Len(); i++ {
		m, err := c.Program(i).Manifest(c.Universe())
		if err != nil {
			return nil, fmt.Errorf("core: triage manifest: %w", err)
		}
		x, err := tex.ManifestVectorInto(m, nil)
		if err != nil {
			return nil, fmt.Errorf("core: triage vectorize: %w", err)
		}
		if err := td.Add(x, c.Apps[i].Label == behavior.Malicious); err != nil {
			return nil, fmt.Errorf("core: triage dataset: %w", err)
		}
	}
	triage, err := ml.TrainLinear(td, ml.DefaultLinearConfig(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("core: triage train: %w", err)
	}
	return triage, nil
}

// New assembles a Checker from trained parts (used by TrainFromCorpus and
// by markets loading a distributed model, §5.4): it builds the hook
// registry, the emulation engine and its lane farm, the adb session, the
// verdict cache, the obs collector, and wires them into the vet and run
// stage chains.
func New(u *framework.Universe, sel *features.Selection, ex *features.Extractor,
	model *ml.RandomForest, cfg Config) (*Checker, error) {
	return NewWithDigest(u, sel, ex, model, cfg, "")
}

// NewWithDigest is New additionally recording the artifact digest the
// parts were loaded from (the modelstore cold-start path), so the serving
// generation is attributable to its on-disk artifact.
func NewWithDigest(u *framework.Universe, sel *features.Selection, ex *features.Extractor,
	model *ml.RandomForest, cfg Config, digest string) (*Checker, error) {
	return NewFromParts(ModelParts{Universe: u, Selection: sel, Extractor: ex, Model: model, Digest: digest}, cfg)
}

// NewFromParts assembles a Checker from one complete set of trained parts
// — the constructor that preserves everything a ModelParts carries,
// including the optional triage model. New and NewWithDigest are part-wise
// wrappers that assemble triage-less checkers.
func NewFromParts(parts ModelParts, cfg Config) (*Checker, error) {
	ck := &Checker{cfg: cfg, obs: obs.NewCollector()}
	if cfg.VerdictCache >= 0 {
		ck.cache = vcache.NewObserved[[]byte](cfg.VerdictCache, ck.obs)
		ck.cache.SetSizeOf(func(e []byte) int { return len(e) })
	}
	g, err := ck.newGeneration(parts, 1, ck.cacheEpoch())
	if err != nil {
		return nil, err
	}
	ck.gen.Store(g)
	ck.obs.Gauge("model.generation").Set(1)
	ck.buildPipelines()
	if cfg.VerdictPersistDir != "" {
		if err := ck.attachPersist(cfg.VerdictPersistDir); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

// newGeneration assembles an immutable generation from trained parts: hook
// registry over the selected keys, emulation engine, lane farm, adb
// session, batch scorer, and the stage-facing ModelGen view. epoch is the
// verdict-cache epoch the generation will serve under (for a swap, the
// epoch after the pending bump).
func (ck *Checker) newGeneration(parts ModelParts, id, epoch uint64) (*generation, error) {
	if parts.Universe == nil || parts.Selection == nil || parts.Extractor == nil || parts.Model == nil {
		return nil, fmt.Errorf("core: incomplete model parts")
	}
	reg, err := hook.NewRegistry(parts.Universe, parts.Selection.Keys)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	emu := emulator.New(ck.cfg.Profile, reg)
	lanes := ck.cfg.Lanes
	if lanes <= 0 {
		lanes = emulator.ProductionLanes
	}
	farm, err := emulator.NewFarm(emu, lanes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	g := &generation{
		id:        id,
		digest:    parts.Digest,
		u:         parts.Universe,
		selection: parts.Selection,
		extractor: parts.Extractor,
		registry:  reg,
		emu:       emu,
		model:     parts.Model,
		triage:    parts.Triage,
		farm:      farm,
		session:   adb.NewSession(adb.NewDevice("emulator-5554", ck.cfg.Profile, reg)),
		swappedAt: time.Now(),
	}
	g.scores = scoreBatcher{model: parts.Model, blocks: &ck.scoreBlocks, rows: &ck.scoreRows}
	trees := ck.cfg.Forest.Trees
	if trees <= 0 {
		trees = ml.DefaultForestConfig(ck.cfg.Seed).Trees
	}
	lo, hi := ck.cfg.triageBand()
	if err := checkTriageBand(lo, hi); err != nil {
		return nil, err
	}
	g.mg = &pipeline.ModelGen{
		ID:        id,
		Digest:    parts.Digest,
		Universe:  parts.Universe,
		Extractor: parts.Extractor,
		Farm:      farm,
		RunRaw:    g.runRaw,
		Score:     g.scores.score,
		Trees:     trees,
		Epoch:     epoch,
		TriageLo:  lo,
		TriageHi:  hi,
	}
	if parts.Triage != nil {
		tex, err := features.NewTriageExtractor(parts.Universe)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		g.mg.Triage = parts.Triage
		g.mg.TriageExtractor = tex
	}
	return g, nil
}

// cacheEpoch is the verdict cache's current epoch (0 with the cache
// disabled).
func (ck *Checker) cacheEpoch() uint64 {
	if ck.cache == nil {
		return 0
	}
	return ck.cache.Epoch()
}

// SwapModel atomically replaces the serving generation with freshly
// trained parts — the zero-downtime promotion primitive. The swap is a
// single generation-pointer flip: in-flight vets finish wholly on the
// generation they pinned, new submissions pin the replacement, and no vet
// ever mixes feature extraction and scoring across generations. The
// verdict-cache epoch advances exactly once per swap, after the pointer
// flip, so the cache can never serve a previous generation's verdict.
// Swaps serialize on an internal mutex; the serving path never blocks on
// one. Returns the new generation's identity.
func (ck *Checker) SwapModel(parts ModelParts) (GenerationInfo, error) {
	ck.swapMu.Lock()
	defer ck.swapMu.Unlock()
	old := ck.gen.Load()
	// The new generation serves under the post-bump epoch. Publishing the
	// generation before bumping means a vet that pins it pre-bump computes
	// correctly but fails its conditional store — never the reverse, where
	// a stale generation's verdict lands in a fresh epoch.
	epoch := ck.cacheEpoch()
	if ck.cache != nil {
		epoch++
	}
	g, err := ck.newGeneration(parts, old.id+1, epoch)
	if err != nil {
		return GenerationInfo{}, err
	}
	ck.gen.Store(g)
	ck.InvalidateVerdicts()
	// The on-disk tier invalidates with the in-memory one: re-key the log
	// to the new generation after the epoch bump, so anything appended for
	// the old epoch is gone and nothing stale survives a restart.
	ck.resetPersist()
	ck.obs.Gauge("model.generation").Set(int64(g.id))
	ck.obs.Counter("model.swaps").Inc()
	return g.info(), nil
}

// Generation identifies the serving model generation: its swap counter
// (matching Verdict.Generation), artifact digest if known, promotion time,
// and key-API count.
func (ck *Checker) Generation() GenerationInfo { return ck.gen.Load().info() }

// Parts returns the serving generation's trained parts as one consistent
// snapshot — a concurrent swap cannot tear it the way separate
// Universe()/Selection()/Model() calls could. This is what model
// snapshotting serializes.
func (ck *Checker) Parts() ModelParts {
	g := ck.gen.Load()
	return ModelParts{
		Universe:  g.u,
		Selection: g.selection,
		Extractor: g.extractor,
		Model:     g.model,
		Digest:    g.digest,
		Triage:    g.triage,
	}
}

// buildPipelines assembles the vet and run stage chains over the checker's
// obs collector. Deps resolve the generation through the atomic pointer,
// so a SwapModel is picked up by the next submission without rebuilding
// the chains.
func (ck *Checker) buildPipelines() {
	d := &pipeline.Deps{
		Gen:     func() *pipeline.ModelGen { return ck.gen.Load().mg },
		Cache:   func() *vcache.Cache[[]byte] { return ck.cache },
		NextSeq: ck.nextVetSeq,
		Obs:     ck.obs,
		Events:  ck.cfg.Events,
		Seed:    ck.cfg.Seed,
	}
	ck.vetPipe = pipeline.VetChain(ck.obs, d)
	ck.runPipe = pipeline.RunChain(ck.obs, d)
}

// runRaw drives a decoded raw archive through the adb device sequence
// (install → Monkey → logs → uninstall → clear). Each generation owns one
// device, so raw submissions pinned to it serialize here.
func (g *generation) runRaw(vc *pipeline.VetContext) (*adb.VetResult, error) {
	g.sessionMu.Lock()
	defer g.sessionMu.Unlock()
	return g.session.VetParsedContext(vc.Ctx, vc.Parsed, vc.Monkey)
}

// Universe returns the serving generation's framework universe.
func (ck *Checker) Universe() *framework.Universe { return ck.gen.Load().u }

// Selection returns the serving generation's key-API selection.
func (ck *Checker) Selection() *features.Selection { return ck.gen.Load().selection }

// Extractor returns the serving generation's feature extractor.
func (ck *Checker) Extractor() *features.Extractor { return ck.gen.Load().extractor }

// Model returns the serving generation's trained forest.
func (ck *Checker) Model() *ml.RandomForest { return ck.gen.Load().model }

// Config returns the deployment config.
func (ck *Checker) Config() Config {
	ck.swapMu.Lock()
	defer ck.swapMu.Unlock()
	return ck.cfg
}

// TriageBand returns the serving generation's normalized tier-1
// uncertainty band.
func (ck *Checker) TriageBand() (lo, hi float64) {
	mg := ck.gen.Load().mg
	return mg.TriageLo, mg.TriageHi
}

// SetTriageBand reconfigures the tier-1 uncertainty band and republishes
// the serving generation under it, with full swap semantics: the
// generation counter advances and the verdict-cache epoch bumps exactly
// once, invalidating every memoized verdict — the tier split of cached
// verdicts depended on the old band, so none of them may survive it. The
// trivial band [0, 1] (or the zero band) turns the tier off.
func (ck *Checker) SetTriageBand(lo, hi float64) (GenerationInfo, error) {
	if lo == 0 && hi == 0 {
		lo, hi = 0, 1
	}
	if err := checkTriageBand(lo, hi); err != nil {
		return GenerationInfo{}, err
	}
	ck.swapMu.Lock()
	ck.cfg.TriageLo, ck.cfg.TriageHi = lo, hi
	ck.swapMu.Unlock()
	return ck.SwapModel(ck.Parts())
}

// Obs returns the checker's observability collector: per-stage spans and
// latency distributions, verdict-cache counters, and emulator-reliability
// counters. Attach a sink to stream per-submission span events.
func (ck *Checker) Obs() *obs.Collector { return ck.obs }

// StageStats summarizes per-stage span accounting (count, errors, and
// virtual-latency quantiles) in first-seen stage order.
func (ck *Checker) StageStats() []obs.StageStats { return ck.obs.StageStats() }

// PipelineStages returns the canonical vet chain's stage names in order.
func (ck *Checker) PipelineStages() []string { return ck.vetPipe.Stages() }

// Vet is the single canonical vetting entrypoint: every other Vet* method
// is a thin wrapper over it. The context bounds the emulation — a deadline
// or cancellation aborts the run at the next crash-restart or event-batch
// boundary, surfacing as an error wrapping ErrDeadlineExceeded (and
// context.DeadlineExceeded) or context.Canceled; pipeline.FailedStage
// reports which stage the vet died in. Safe for concurrent use: the
// emulator, extractor and model are read-only at vet time, program/parsed
// submissions fan out over farm lanes, and raw archive submissions
// serialize on the checker's single adb session.
//
// Vet consults the digest-keyed verdict cache first: a byte-identical
// resubmission is answered without re-emulating, and N concurrent
// submissions of the same digest trigger exactly one emulation (the rest
// block on the leader's result). Cached verdicts are bit-identical to
// emulated ones because the Monkey seed derives from the content digest.
func (ck *Checker) Vet(ctx context.Context, sub Submission) (*Verdict, error) {
	v, _, err := ck.VetOutcome(ctx, sub)
	return v, err
}

// VetOutcome is Vet, additionally reporting how the verdict was served:
// OutcomeMiss (this call paid the emulation), OutcomeHit (answered from
// the cache), OutcomeCoalesced (deduplicated onto a concurrent identical
// submission), or OutcomeBypass (cache disabled or payload undigestable).
func (ck *Checker) VetOutcome(ctx context.Context, sub Submission) (*Verdict, vcache.Outcome, error) {
	vc := pipeline.AcquireContext(ctx, &sub)
	defer pipeline.ReleaseContext(vc)
	if err := ck.vetPipe.Run(vc); err != nil {
		return nil, vc.Outcome, ck.vetError(vc, err)
	}
	// The Verdict is never pool-backed (fresh allocation per submission),
	// so returning it past the release is safe; everything else on vc is
	// recycled.
	return vc.Verdict, vc.Outcome, nil
}

// VetTrace is VetOutcome, additionally returning the per-stage span log
// for this submission (one obs event per completed stage, in execution
// order) — the cmd/tmarket -trace feed.
func (ck *Checker) VetTrace(ctx context.Context, sub Submission) (*Verdict, vcache.Outcome, []obs.Event, error) {
	vc := pipeline.AcquireContext(ctx, &sub)
	defer pipeline.ReleaseContext(vc)
	if err := ck.vetPipe.Run(vc); err != nil {
		return nil, vc.Outcome, copySpans(vc), ck.vetError(vc, err)
	}
	return vc.Verdict, vc.Outcome, copySpans(vc), nil
}

// copySpans detaches the span log from the pooled context — its backing
// array is recycled the moment the driver releases vc.
func copySpans(vc *pipeline.VetContext) []obs.Event {
	if len(vc.Spans) == 0 {
		return nil
	}
	out := make([]obs.Event, len(vc.Spans))
	copy(out, vc.Spans)
	return out
}

// VetRun is Vet, additionally returning the raw emulation result (the
// input to analysis-log export). It always emulates — the result is the
// point — but writes the verdict through to the cache so subsequent Vets
// of the same content are served without re-running.
func (ck *Checker) VetRun(ctx context.Context, sub Submission) (*Verdict, *emulator.Result, error) {
	vc := pipeline.AcquireContext(ctx, &sub)
	defer pipeline.ReleaseContext(vc)
	if err := ck.runPipe.Run(vc); err != nil {
		return nil, nil, ck.vetError(vc, err)
	}
	return vc.Verdict, vc.Run, nil
}

// vetError shapes a pipeline failure for the public surface: admission
// failures (ErrBadSubmission) pass through exactly as Validate raised
// them; everything else is wrapped with the vet prefix and the submission
// label. The stage attribution survives — pipeline.FailedStage still
// reports the dying stage through the wrap.
func (ck *Checker) vetError(vc *pipeline.VetContext, err error) error {
	if errors.Is(err, ErrBadSubmission) {
		return err
	}
	return fmt.Errorf("core: vet %s: %w", vc.PackageLabel(), err)
}

// VetCount returns how many submissions the checker has vetted (or has
// reserved sequence numbers for).
func (ck *Checker) VetCount() int64 { return atomic.LoadInt64(&ck.vetCount) }

// ReserveVetSeqs atomically reserves n consecutive vet sequence numbers
// and returns the first. Parallel review pools reserve up front and assign
// sequences by queue position, so service logs and metrics identify
// submissions the way a serial review would have numbered them. (Verdicts
// themselves no longer depend on sequence numbers — the Monkey seed
// derives from the content digest; see pipeline.Deps.MonkeyFor.)
func (ck *Checker) ReserveVetSeqs(n int) int64 {
	return atomic.AddInt64(&ck.vetCount, int64(n)) - int64(n) + 1
}

// nextVetSeq reserves the next single sequence number.
func (ck *Checker) nextVetSeq() int64 { return atomic.AddInt64(&ck.vetCount, 1) }

// InvalidateVerdicts drops every memoized verdict by advancing the
// cache's model-generation epoch; SwapModel calls it when the model swaps.
// In-flight emulations complete but their verdicts are not stored.
func (ck *Checker) InvalidateVerdicts() {
	if ck.cache != nil {
		ck.cache.BumpEpoch()
	}
}

// CacheStats snapshots the verdict-cache counters; the zero Stats when
// the cache is disabled.
func (ck *Checker) CacheStats() vcache.Stats {
	if ck.cache == nil {
		return vcache.Stats{}
	}
	return ck.cache.Stats()
}
