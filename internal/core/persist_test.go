package core

import (
	"bytes"
	"context"
	"testing"

	"apichecker/internal/dataset"
	"apichecker/internal/framework"
)

func TestExportImportRoundTrip(t *testing.T) {
	ck, corpus := trainedChecker(t, 500)
	data, err := ck.ExportBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty export")
	}

	// A "smaller market" imports the model against its own copy of the
	// universe and vets without ever training.
	imported, err := ImportBytes(data, testU)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(imported.Selection().Keys), len(ck.Selection().Keys); got != want {
		t.Fatalf("imported keys = %d, want %d", got, want)
	}
	for i := 0; i < 60; i++ {
		p := corpus.Program(i)
		v1, err := ck.Vet(context.Background(), Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		v2, err := imported.Vet(context.Background(), Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		// Same model + same app: identical classification. (Scores
		// match too because the forest is identical.)
		if v1.Malicious != v2.Malicious || v1.Score != v2.Score {
			t.Fatalf("app %d: original %v/%f vs imported %v/%f",
				i, v1.Malicious, v1.Score, v2.Malicious, v2.Score)
		}
	}
}

func TestImportRejectsMismatchedUniverse(t *testing.T) {
	ck, _ := trainedChecker(t, 400)
	data, err := ck.ExportBytes()
	if err != nil {
		t.Fatal(err)
	}
	other := framework.MustGenerate(framework.TestConfig(2000))
	if _, err := ImportBytes(data, other); err == nil {
		t.Error("import accepted a mismatched universe")
	}
	// Same config but evolved level also mismatches.
	evolved := framework.MustGenerate(framework.TestConfig(3000))
	evolved.Evolve(9)
	if _, err := ImportBytes(data, evolved); err == nil {
		t.Error("import accepted a universe at a different SDK level")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportBytes([]byte("not a model"), testU); err == nil {
		t.Error("import accepted garbage")
	}
	if _, err := Import(bytes.NewReader(nil), testU); err == nil {
		t.Error("import accepted empty stream")
	}
}

func TestExportRequiresTraining(t *testing.T) {
	ck := &Checker{}
	var buf bytes.Buffer
	if err := ck.Export(&buf); err == nil {
		t.Error("export of untrained checker succeeded")
	}
}

// TestDistributedModelWorkflow covers §5.4's distribution story end to
// end: a big market trains, a small market imports and runs a review day.
func TestDistributedModelWorkflow(t *testing.T) {
	big, _ := trainedChecker(t, 700)
	data, err := big.ExportBytes()
	if err != nil {
		t.Fatal(err)
	}
	small, err := ImportBytes(data, testU)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.DefaultConfig()
	cfg.Seed = 31
	cfg.NumApps = 200
	day, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := 0; i < day.Len(); i++ {
		v, err := small.Vet(context.Background(), Submission{Program: day.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if v.Malicious == (day.Labels()[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.93 {
		t.Errorf("imported model accuracy = %.3f", acc)
	}
}
