package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"apichecker/internal/apk"
)

func TestSubmissionValidate(t *testing.T) {
	_, corpus := trainedChecker(t, 120)
	p := corpus.Program(0)
	raw, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}

	good := []Submission{
		{Raw: raw},
		{Parsed: parsed},
		{Program: p},
		{Program: p, Seq: 7},
	}
	for i, sub := range good {
		if err := sub.Validate(); err != nil {
			t.Errorf("good[%d]: Validate() = %v", i, err)
		}
	}

	bad := []Submission{
		{},
		{Raw: raw, Program: p},
		{Raw: raw, Parsed: parsed},
		{Parsed: parsed, Program: p},
		{Raw: raw, Parsed: parsed, Program: p},
	}
	for i, sub := range bad {
		if err := sub.Validate(); !errors.Is(err, ErrBadSubmission) {
			t.Errorf("bad[%d]: Validate() = %v, want ErrBadSubmission", i, err)
		}
	}
	// Vet surfaces validation failures without consuming a sequence
	// number.
	ck, _ := trainedChecker(t, 120)
	before := ck.VetCount()
	if _, err := ck.Vet(context.Background(), Submission{}); !errors.Is(err, ErrBadSubmission) {
		t.Fatalf("Vet(empty) = %v, want ErrBadSubmission", err)
	}
	if ck.VetCount() != before {
		t.Error("invalid submission consumed a vet sequence number")
	}
}

// TestSubmissionPayloadsMatchVet pins the canonical-surface contract:
// the same app yields bit-identical verdicts through Vet whichever
// payload form the Submission carries, at the same sequence number.
func TestSubmissionPayloadsMatchVet(t *testing.T) {
	ckA, corpus := trainedChecker(t, 120)
	ckB, _ := trainedChecker(t, 120)
	p := corpus.Program(3)

	va, err := ckA.Vet(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	vb, err := ckB.Vet(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(va, vb) {
		t.Errorf("Vet diverged across fresh checkers:\n%+v\n%+v", va, vb)
	}

	vs, err := ckA.Vet(context.Background(), Submission{Program: p, Seq: 42})
	if err != nil {
		t.Fatal(err)
	}
	vq, err := ckB.Vet(context.Background(), Submission{Program: p, Seq: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, vq) {
		t.Errorf("Vet diverged across checkers with pinned Seq")
	}

	raw, parsed, err := apk.BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := ckA.Vet(context.Background(), Submission{Raw: raw})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := ckB.Vet(context.Background(), Submission{Raw: raw})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vr, vp) {
		t.Errorf("Raw-payload Vet diverged across fresh checkers")
	}
	// A parsed submission carries the archive metadata (MD5, version)
	// without paying the unpack again.
	vd, err := ckA.Vet(context.Background(), Submission{Parsed: parsed})
	if err != nil {
		t.Fatal(err)
	}
	if vd.MD5 != vr.MD5 || vd.Package != vr.Package {
		t.Errorf("parsed vet identity = %q/%q, want %q/%q",
			vd.Package, vd.MD5, vr.Package, vr.MD5)
	}
}

func TestVetDeadlineExceeded(t *testing.T) {
	ck, corpus := trainedChecker(t, 120)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()

	_, err := ck.Vet(ctx, Submission{Program: corpus.Program(0)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Vet(expired ctx) = %v, want ErrDeadlineExceeded", err)
	}
	// The sentinel chains down to the stdlib cause so callers can match
	// either.
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not wrap context.DeadlineExceeded", err)
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := ck.Vet(canceled, Submission{Program: corpus.Program(0)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Vet(canceled ctx) = %v, want context.Canceled", err)
	}
}

func TestVetBadAPK(t *testing.T) {
	ck, _ := trainedChecker(t, 120)
	_, err := ck.Vet(context.Background(), Submission{Raw: []byte("not an apk")})
	if !errors.Is(err, apk.ErrBadAPK) {
		t.Fatalf("Vet(garbage) = %v, want ErrBadAPK", err)
	}
	if _, err := ck.Vet(context.Background(), Submission{Raw: []byte{0x50, 0x4b}}); !errors.Is(err, apk.ErrBadAPK) {
		t.Fatalf("Vet(truncated archive) = %v, want ErrBadAPK", err)
	}
}
