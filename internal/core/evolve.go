package core

import "apichecker/internal/dataset"

// Retrain re-runs the full §4.4 selection and model training against a
// refreshed labelled corpus (the original dataset plus newly labelled
// submissions), in place. This is the monthly model-evolution step of
// §5.3: as the SDK gains APIs and the app mix shifts, the key-API set
// drifts slightly (the paper observes 425-432 keys over a year) while
// detection quality stays stable.
//
// The corpus must be bound to the checker's universe (retraining after
// Universe.Evolve requires a corpus rebuilt over the evolved universe so
// its generator knows the new APIs).
func (ck *Checker) Retrain(c *dataset.Corpus) (*TrainReport, error) {
	next, rep, err := TrainFromCorpus(c, ck.cfg)
	if err != nil {
		return nil, err
	}
	ck.u = next.u
	ck.selection = next.selection
	ck.extractor = next.extractor
	ck.registry = next.registry
	ck.emu = next.emu
	ck.farm = next.farm
	ck.model = next.model
	// Every memoized verdict was produced by the previous model (and
	// possibly a previous key-API set); advance the cache epoch so none of
	// them is ever served again.
	ck.InvalidateVerdicts()
	return rep, nil
}
