package core

import "apichecker/internal/dataset"

// Retrain re-runs the full §4.4 selection and model training against a
// refreshed labelled corpus (the original dataset plus newly labelled
// submissions) and hot-swaps the result into the serving path. This is the
// monthly model-evolution step of §5.3: as the SDK gains APIs and the app
// mix shifts, the key-API set drifts slightly (the paper observes 425-432
// keys over a year) while detection quality stays stable.
//
// The swap goes through SwapModel, so it is atomic with respect to
// concurrent Vets: every in-flight vet finishes wholly on the generation
// it pinned, the verdict-cache epoch advances exactly once, and no verdict
// ever mixes the old and new key-API sets or models.
//
// The corpus must be bound to the checker's universe (retraining after
// Universe.Evolve requires a corpus rebuilt over the evolved universe so
// its generator knows the new APIs).
func (ck *Checker) Retrain(c *dataset.Corpus) (*TrainReport, error) {
	parts, rep, err := trainParts(c, ck.cfg)
	if err != nil {
		return nil, err
	}
	if _, err := ck.SwapModel(parts); err != nil {
		return nil, err
	}
	return rep, nil
}
