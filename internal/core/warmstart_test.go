package core

import (
	"context"
	"testing"

	"apichecker/internal/emulator"
	"apichecker/internal/vcache"
)

// TestPersistWarmStart is the kill-and-restart scenario: a checker with a
// persist directory vets submissions, shuts down, and a fresh checker
// built from the same parts and the same directory answers the replayed
// submissions entirely from the restored snapshot — zero emulations,
// verdicts bit-identical to the first run.
func TestPersistWarmStart(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.VerdictPersistDir = dir
	ck1, corpus := trainedCheckerCfg(t, 300, cfg)

	const nSubs = 6
	baseline := make([]*Verdict, nSubs)
	for i := 0; i < nSubs; i++ {
		v, out, err := ck1.VetOutcome(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		if out != vcache.OutcomeMiss {
			t.Fatalf("sub %d: first vet outcome = %v, want miss", i, out)
		}
		baseline[i] = v
	}
	ps := ck1.PersistStats()
	if !ps.Enabled || ps.Appends != nSubs {
		t.Fatalf("first run persist stats = %+v, want %d appends", ps, nSubs)
	}
	if err := ck1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second checker from the same trained parts, pointed at
	// the same directory.
	p := ck1.Parts()
	ck2, err := New(p.Universe, p.Selection, p.Extractor, p.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.ClosePersist()
	ps = ck2.PersistStats()
	if ps.Restored != nSubs || ps.Skipped != 0 {
		t.Fatalf("restart persist stats = %+v, want %d restored", ps, nSubs)
	}

	runs0 := emulator.RunCount()
	for i := 0; i < nSubs; i++ {
		v, out, err := ck2.VetOutcome(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		if out != vcache.OutcomeHit {
			t.Fatalf("sub %d: replayed vet outcome = %v, want warm-start hit", i, out)
		}
		if *v != *baseline[i] {
			t.Fatalf("sub %d: restored verdict differs:\n  first run %+v\n  restart   %+v", i, *baseline[i], *v)
		}
	}
	if runs := emulator.RunCount() - runs0; runs != 0 {
		t.Fatalf("restart re-emulated %d submissions, want 0", runs)
	}
}

// TestPersistSwapInvalidates: a lifecycle swap must invalidate the
// persisted tier exactly like the in-memory epoch bump — verdicts
// appended before the swap never survive a restart.
func TestPersistSwapInvalidates(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.VerdictPersistDir = dir
	ck1, corpus := trainedCheckerCfg(t, 300, cfg)

	if _, _, err := ck1.VetOutcome(context.Background(), Submission{Program: corpus.Program(0)}); err != nil {
		t.Fatal(err)
	}
	if ps := ck1.PersistStats(); ps.Appends != 1 {
		t.Fatalf("pre-swap persist stats = %+v", ps)
	}
	if _, err := ck1.SwapModel(ck1.Parts()); err != nil {
		t.Fatal(err)
	}
	ps := ck1.PersistStats()
	if ps.Resets != 1 {
		t.Fatalf("post-swap persist stats = %+v, want 1 reset", ps)
	}
	if err := ck1.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	p := ck1.Parts()
	ck2, err := New(p.Universe, p.Selection, p.Extractor, p.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.ClosePersist()
	if ps := ck2.PersistStats(); ps.Restored != 0 {
		t.Fatalf("restart after swap restored %d entries, want 0", ps.Restored)
	}
	runs0 := emulator.RunCount()
	if _, out, err := ck2.VetOutcome(context.Background(), Submission{Program: corpus.Program(0)}); err != nil {
		t.Fatal(err)
	} else if out != vcache.OutcomeMiss {
		t.Fatalf("post-swap restart vet outcome = %v, want miss", out)
	}
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("post-swap restart emulations = %d, want 1", runs)
	}
}
