package core

import (
	"context"
	"sync"
	"testing"

	"apichecker/internal/apk"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/vcache"
)

// TestVetCacheDedupes: a byte-identical resubmission is answered from the
// cache — one emulation, bit-identical verdict.
func TestVetCacheDedupes(t *testing.T) {
	ck, corpus := trainedChecker(t, 300)
	p := corpus.Program(0)

	runs0 := emulator.RunCount()
	v1, out1, err := ck.VetOutcome(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != vcache.OutcomeMiss {
		t.Fatalf("first vet outcome = %v, want miss", out1)
	}
	v2, out2, err := ck.VetOutcome(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if out2 != vcache.OutcomeHit {
		t.Fatalf("second vet outcome = %v, want hit", out2)
	}
	if *v1 != *v2 {
		t.Fatalf("cached verdict differs:\n  emulated %+v\n  cached   %+v", *v1, *v2)
	}
	if v1 == v2 {
		t.Fatal("cache must hand each caller its own Verdict copy")
	}
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("emulation runs = %d, want 1", runs)
	}
	st := ck.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestVetCacheDisabled: VerdictCache < 0 turns memoization off entirely —
// every vet emulates, and verdicts still match byte for byte because the
// Monkey seed derives from content, not from the cache.
func TestVetCacheDisabled(t *testing.T) {
	corpus := trainedCorpus(t, 300)
	cfg := DefaultConfig()
	cfg.VerdictCache = -1
	ck, _, err := TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := corpus.Program(0)

	runs0 := emulator.RunCount()
	v1, out1, err := ck.VetOutcome(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	v2, out2, err := ck.VetOutcome(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != vcache.OutcomeBypass || out2 != vcache.OutcomeBypass {
		t.Fatalf("outcomes = %v, %v, want bypass, bypass", out1, out2)
	}
	if runs := emulator.RunCount() - runs0; runs != 2 {
		t.Fatalf("emulation runs = %d, want 2 with the cache disabled", runs)
	}
	if *v1 != *v2 {
		t.Fatalf("content-determinism broken: %+v vs %+v", *v1, *v2)
	}
	if st := ck.CacheStats(); st != (vcache.Stats{}) {
		t.Fatalf("disabled cache has stats %+v", st)
	}
}

// trainedCorpus generates the corpus trainedChecker trains on.
func trainedCorpus(t *testing.T, n int) *dataset.Corpus {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumApps = n
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestCachedEqualsUncached is the bit-identity contract across cache
// configurations: the same submission vetted by a cache-enabled checker
// (twice — miss then hit) and by a cache-disabled twin produces the same
// Verdict value in all three cases.
func TestCachedEqualsUncached(t *testing.T) {
	corpus := trainedCorpus(t, 300)
	cached, _, err := TrainFromCorpus(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.VerdictCache = -1
	uncached, _, err := TrainFromCorpus(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := corpus.Program(i)
		miss, err := cached.Vet(context.Background(), Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		hit, err := cached.Vet(context.Background(), Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := uncached.Vet(context.Background(), Submission{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		if *miss != *hit || *miss != *plain {
			t.Fatalf("app %d: miss %+v / hit %+v / uncached %+v differ", i, *miss, *hit, *plain)
		}
	}
}

// TestRetrainInvalidatesCache: verdicts memoized under the previous model
// generation are never served after Retrain.
func TestRetrainInvalidatesCache(t *testing.T) {
	ck, corpus := trainedChecker(t, 300)
	p := corpus.Program(1)

	if _, out, err := ck.VetOutcome(context.Background(), Submission{Program: p}); err != nil || out != vcache.OutcomeMiss {
		t.Fatalf("prime vet: out=%v err=%v", out, err)
	}
	if _, out, err := ck.VetOutcome(context.Background(), Submission{Program: p}); err != nil || out != vcache.OutcomeHit {
		t.Fatalf("warm vet: out=%v err=%v", out, err)
	}
	if _, err := ck.Retrain(corpus); err != nil {
		t.Fatal(err)
	}
	st := ck.CacheStats()
	if st.Epoch != 1 || st.Entries != 0 || st.Invalidations == 0 {
		t.Fatalf("post-retrain cache stats = %+v, want epoch 1 and no entries", st)
	}

	runs0 := emulator.RunCount()
	_, out, err := ck.VetOutcome(context.Background(), Submission{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if out != vcache.OutcomeMiss {
		t.Fatalf("post-retrain vet outcome = %v, want miss (stale entry served!)", out)
	}
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("post-retrain emulation runs = %d, want 1", runs)
	}
}

// TestVetRunFeedsCache: the write-through path — VetRun (and therefore the
// VetRun) always emulates but stores its verdict, so a
// later Vet of the same bytes is a hit.
func TestVetRunFeedsCache(t *testing.T) {
	ck, corpus := trainedChecker(t, 300)
	data, err := apk.Build(corpus.Program(2), ck.Universe())
	if err != nil {
		t.Fatal(err)
	}

	runs0 := emulator.RunCount()
	v1, _, err := ck.VetRun(context.Background(), Submission{Raw: data})
	if err != nil {
		t.Fatal(err)
	}
	v2, out, err := ck.VetOutcome(context.Background(), Submission{Raw: data})
	if err != nil {
		t.Fatal(err)
	}
	if out != vcache.OutcomeHit {
		t.Fatalf("vet after VetRun outcome = %v, want hit", out)
	}
	if *v1 != *v2 {
		t.Fatalf("write-through verdict differs: %+v vs %+v", *v1, *v2)
	}
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("emulation runs = %d, want 1", runs)
	}
}

// TestDigestAgreesAcrossPayloadForms: one app's Raw, Parsed and Program
// submissions share a digest exactly when their canonical bytes agree —
// Raw and Parsed key on the archive, so they collide with each other.
func TestDigestAgreesAcrossPayloadForms(t *testing.T) {
	ck, corpus := trainedChecker(t, 300)
	p := corpus.Program(3)
	data, parsed, err := apk.BuildAndParse(p, ck.Universe())
	if err != nil {
		t.Fatal(err)
	}

	raw := Submission{Raw: data}
	par := Submission{Parsed: parsed}
	if raw.ContentDigest() == "" || raw.ContentDigest() != par.ContentDigest() {
		t.Fatalf("raw digest %q != parsed digest %q", raw.ContentDigest(), par.ContentDigest())
	}
	prog := Submission{Program: p}
	if prog.ContentDigest() == "" {
		t.Fatal("program submission has no digest")
	}
	if prog.ContentDigest() == raw.ContentDigest() {
		t.Fatal("program digest (behaviour encoding) should differ from archive digest")
	}

	// A Parsed submission of the same archive is a cache hit after Raw.
	runs0 := emulator.RunCount()
	v1, _, err := ck.VetOutcome(context.Background(), raw)
	if err != nil {
		t.Fatal(err)
	}
	v2, out, err := ck.VetOutcome(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if out != vcache.OutcomeHit {
		t.Fatalf("parsed-after-raw outcome = %v, want hit", out)
	}
	if *v1 != *v2 {
		t.Fatalf("verdicts differ across payload forms: %+v vs %+v", *v1, *v2)
	}
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("emulation runs = %d, want 1", runs)
	}
}

// TestConcurrentDuplicateVets: N goroutines vetting the same program pay
// for exactly one emulation between them (singleflight), all receiving
// the same verdict.
func TestConcurrentDuplicateVets(t *testing.T) {
	ck, corpus := trainedChecker(t, 300)
	p := corpus.Program(4)
	const n = 16

	runs0 := emulator.RunCount()
	verdicts := make([]*Verdict, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := ck.Vet(context.Background(), Submission{Program: p})
			if err != nil {
				t.Error(err)
				return
			}
			verdicts[i] = v
		}(i)
	}
	wg.Wait()
	if runs := emulator.RunCount() - runs0; runs != 1 {
		t.Fatalf("emulation runs = %d, want 1 for %d concurrent duplicates", runs, n)
	}
	for i := 1; i < n; i++ {
		if *verdicts[i] != *verdicts[0] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, *verdicts[i], *verdicts[0])
		}
	}
	st := ck.CacheStats()
	if st.Misses != 1 || st.Hits+st.Coalesced != n-1 {
		t.Fatalf("cache stats = %+v, want 1 miss and %d hits+coalesced", st, n-1)
	}
}
