package core

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
)

// TestSwapDuringConcurrentVets is the hot-swap atomicity test: vets run
// continuously while Retrain replaces the serving generation, and every
// observed verdict must be attributable to exactly one generation — bit-
// identical to what that generation produces in isolation, with its
// Generation field naming which one. A verdict mixing the old key-API set
// with the new model (or vice versa) would match neither expectation.
// Run with -race: the old Retrain swapped six fields non-atomically under
// concurrent readers, which this test was written to catch.
func TestSwapDuringConcurrentVets(t *testing.T) {
	ck, corpus := trainedChecker(t, 300)

	// A refreshed corpus over the same universe, different enough that the
	// retrained generation genuinely differs (new selection and model).
	cfg2 := dataset.DefaultConfig()
	cfg2.NumApps = 360
	corpus2, err := dataset.Generate(testU, cfg2)
	if err != nil {
		t.Fatal(err)
	}

	progs := make([]*behavior.Program, 8)
	for i := range progs {
		progs[i] = corpus.Program(i)
	}

	// Expected generation-1 verdicts: content-determinism makes any gen-1
	// vet of the same program bit-identical to these.
	ctx := context.Background()
	e1 := make([]*Verdict, len(progs))
	for i, p := range progs {
		if e1[i], err = ck.Vet(ctx, Submission{Program: p}); err != nil {
			t.Fatal(err)
		}
		if e1[i].Generation != 1 {
			t.Fatalf("pre-swap verdict generation = %d, want 1", e1[i].Generation)
		}
	}

	epoch0 := ck.CacheStats().Epoch

	// Hammer the checker from many goroutines while the retrain swaps the
	// generation underneath them.
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		observed []struct {
			prog int
			v    *Verdict
		}
	)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				i := (w + n) % len(progs)
				v, err := ck.Vet(ctx, Submission{Program: progs[i]})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				observed = append(observed, struct {
					prog int
					v    *Verdict
				}{i, v})
				mu.Unlock()
			}
		}(w)
	}

	if _, err := ck.Retrain(corpus2); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()

	if g := ck.Generation(); g.ID != 2 {
		t.Fatalf("serving generation = %d after one retrain, want 2", g.ID)
	}
	if epoch1 := ck.CacheStats().Epoch; epoch1 != epoch0+1 {
		t.Fatalf("cache epoch advanced %d times across one swap, want exactly 1", epoch1-epoch0)
	}

	// Expected generation-2 verdicts, from the now-swapped checker.
	e2 := make([]*Verdict, len(progs))
	for i, p := range progs {
		if e2[i], err = ck.Vet(ctx, Submission{Program: p}); err != nil {
			t.Fatal(err)
		}
		if e2[i].Generation != 2 {
			t.Fatalf("post-swap verdict generation = %d, want 2", e2[i].Generation)
		}
	}

	// Every verdict observed during the churn came wholly from one
	// generation.
	saw := [3]int{}
	for _, o := range observed {
		switch o.v.Generation {
		case 1:
			if !reflect.DeepEqual(o.v, e1[o.prog]) {
				t.Fatalf("prog %d: gen-1 verdict diverges from gen-1 expectation:\n got %+v\nwant %+v",
					o.prog, o.v, e1[o.prog])
			}
		case 2:
			if !reflect.DeepEqual(o.v, e2[o.prog]) {
				t.Fatalf("prog %d: gen-2 verdict diverges from gen-2 expectation:\n got %+v\nwant %+v",
					o.prog, o.v, e2[o.prog])
			}
		default:
			t.Fatalf("verdict carries generation %d; only 1 and 2 ever served", o.v.Generation)
		}
		saw[o.v.Generation]++
	}
	if saw[1] == 0 {
		t.Error("churn observed no generation-1 verdicts — workers never overlapped the retrain")
	}
	t.Logf("churn observed %d gen-1 and %d gen-2 verdicts", saw[1], saw[2])
}
