package core

import (
	"context"
	"testing"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/framework"
	"apichecker/internal/ml"
)

var testU = framework.MustGenerate(framework.TestConfig(3000))

func trainedChecker(t *testing.T, n int) (*Checker, *dataset.Corpus) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumApps = n
	corpus, err := dataset.Generate(testU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckCfg := DefaultConfig()
	ck, rep, err := TrainFromCorpus(corpus, ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyAPIs == 0 || rep.Features <= rep.KeyAPIs {
		t.Fatalf("report = %+v", rep)
	}
	return ck, corpus
}

func TestTrainAndVetCorpus(t *testing.T) {
	ck, corpus := trainedChecker(t, 700)

	var m ml.Confusion
	var scanTotal time.Duration
	for i := 0; i < corpus.Len(); i++ {
		v, err := ck.Vet(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		m.Observe(v.Malicious, corpus.Apps[i].Label == behavior.Malicious)
		scanTotal += v.ScanTime
		if v.OverallTime <= v.ScanTime {
			t.Fatal("overall time must exceed scan time")
		}
	}
	// In-sample performance should be strong (the paper's production
	// numbers are 98%/96% out-of-sample at full scale).
	if m.Precision() < 0.85 || m.Recall() < 0.7 {
		t.Errorf("in-corpus vetting: %v", m)
	}
	meanScan := scanTotal / time.Duration(corpus.Len())
	// §5.1: mean 1.3 min on the lightweight engine tracking key APIs.
	if meanScan < 40*time.Second || meanScan > 150*time.Second {
		t.Errorf("mean scan time = %v, want ≈ 1.3 min", meanScan)
	}
}

func TestVetRawAPKRoundTrip(t *testing.T) {
	ck, corpus := trainedChecker(t, 400)
	p := corpus.Program(0)
	data, err := apk.Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ck.Vet(context.Background(), Submission{Raw: data})
	if err != nil {
		t.Fatal(err)
	}
	if v.Package != p.PackageName || v.MD5 == "" {
		t.Errorf("verdict identity: %+v", v)
	}
	if _, err := ck.Vet(context.Background(), Submission{Raw: []byte("garbage")}); err == nil {
		t.Error("Vet accepted a garbage archive")
	}
}

func TestKeyAPICountScalesWithUniverse(t *testing.T) {
	ck, _ := trainedChecker(t, 400)
	sel := ck.Selection()
	designed := len(testU.DesignedKeyAPIs())
	if len(sel.Keys) < designed/2 || len(sel.Keys) > designed*2 {
		t.Errorf("keys = %d, designed key population = %d", len(sel.Keys), designed)
	}
}

func TestRetrainKeepsWorking(t *testing.T) {
	ck, corpus := trainedChecker(t, 400)
	before := len(ck.Selection().Keys)
	rep, err := ck.Retrain(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyAPIs == 0 {
		t.Fatal("retrain selected no keys")
	}
	after := len(ck.Selection().Keys)
	if after < before/2 || after > before*2 {
		t.Errorf("keys drifted wildly: %d -> %d", before, after)
	}
	if _, err := ck.Vet(context.Background(), Submission{Program: corpus.Program(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestLowProfileMalwareIsTheFNSource(t *testing.T) {
	ck, corpus := trainedChecker(t, 700)
	gen := corpus.Generator()
	missedLow, lowTotal := 0, 0
	missedOther, otherTotal := 0, 0
	var lowKeyAPIs, otherKeyAPIs int
	for seed := int64(1000); seed < 1120; seed++ {
		low := gen.Generate(behavior.Spec{
			PackageName: "com.fn.low", Version: 1, Seed: seed,
			Label: behavior.Malicious, Family: behavior.FamilyLowProfile,
		})
		v, err := ck.Vet(context.Background(), Submission{Program: low})
		if err != nil {
			t.Fatal(err)
		}
		lowTotal++
		lowKeyAPIs += v.InvokedKeyAPIs
		if !v.Malicious {
			missedLow++
		}
		other := gen.Generate(behavior.Spec{
			PackageName: "com.fn.other", Version: 1, Seed: seed,
			Label: behavior.Malicious, Family: behavior.FamilySpyware,
		})
		v2, err := ck.Vet(context.Background(), Submission{Program: other})
		if err != nil {
			t.Fatal(err)
		}
		otherTotal++
		otherKeyAPIs += v2.InvokedKeyAPIs
		if !v2.Malicious {
			missedOther++
		}
	}
	// §5.2: false negatives concentrate in apps that barely use key
	// APIs.
	if missedLow <= missedOther {
		t.Errorf("low-profile misses (%d/%d) not above normal misses (%d/%d)",
			missedLow, lowTotal, missedOther, otherTotal)
	}
	if lowKeyAPIs >= otherKeyAPIs {
		t.Errorf("low-profile apps use %d key APIs vs %d for spyware, want fewer",
			lowKeyAPIs, otherKeyAPIs)
	}
}

func TestProfileChoiceAffectsScanTime(t *testing.T) {
	cfgData := dataset.DefaultConfig()
	cfgData.NumApps = 300
	corpus, err := dataset.Generate(testU, cfgData)
	if err != nil {
		t.Fatal(err)
	}
	fast := DefaultConfig()
	slow := DefaultConfig()
	slow.Profile = emulator.GoogleEmulator
	ckFast, _, err := TrainFromCorpus(corpus, fast)
	if err != nil {
		t.Fatal(err)
	}
	ckSlow, _, err := TrainFromCorpus(corpus, slow)
	if err != nil {
		t.Fatal(err)
	}
	var tf, ts time.Duration
	for i := 0; i < 40; i++ {
		vf, err := ckFast.Vet(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		vs, err := ckSlow.Vet(context.Background(), Submission{Program: corpus.Program(i)})
		if err != nil {
			t.Fatal(err)
		}
		tf += vf.ScanTime
		ts += vs.ScanTime
	}
	if tf >= ts {
		t.Errorf("lightweight total %v not faster than google %v", tf, ts)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	cfgData := dataset.DefaultConfig()
	cfgData.NumApps = 100
	corpus, err := dataset.Generate(testU, cfgData)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Events = 0
	if _, _, err := TrainFromCorpus(corpus, bad); err == nil {
		t.Error("TrainFromCorpus accepted zero events")
	}
}
