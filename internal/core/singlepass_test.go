package core

import (
	"context"
	"sync"
	"testing"

	"apichecker/internal/dataset"
	"apichecker/internal/emulator"
	"apichecker/internal/framework"
)

// TestTrainFromCorpusSinglePass is the headline acceptance check of the run
// cache: training performs exactly one corpus emulation pass. The usage
// measurement emulates each app once under full tracking; vectorization
// projects from those retained logs and must not emulate again.
func TestTrainFromCorpusSinglePass(t *testing.T) {
	u := framework.MustGenerate(framework.TestConfig(3000))
	cfg := dataset.DefaultConfig()
	cfg.NumApps = 300
	corpus, err := dataset.Generate(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := emulator.RunCount()
	_, rep, err := TrainFromCorpus(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := emulator.RunCount() - before
	if got != int64(corpus.Len()) {
		t.Fatalf("training ran %d emulations for %d apps, want exactly one pass", got, corpus.Len())
	}
	if rep.EmulationRuns != got {
		t.Fatalf("TrainReport.EmulationRuns = %d, emulator counted %d", rep.EmulationRuns, got)
	}
}

// TestTrainFromCorpusLegacyTwoPass pins the pre-cache behaviour the
// benchmark baseline relies on: with run caching disabled, training pays
// two corpus passes (measurement + per-profile vectorization re-runs, which
// may add lightweight-engine fallbacks).
func TestTrainFromCorpusLegacyTwoPass(t *testing.T) {
	u := framework.MustGenerate(framework.TestConfig(3000))
	cfg := dataset.DefaultConfig()
	cfg.NumApps = 300
	corpus, err := dataset.Generate(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus.SetRunCaching(false)
	before := emulator.RunCount()
	_, rep, err := TrainFromCorpus(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := emulator.RunCount() - before
	if got < 2*int64(corpus.Len()) {
		t.Fatalf("legacy pipeline ran %d emulations for %d apps, want >= two passes", got, corpus.Len())
	}
	if rep.EmulationRuns != got {
		t.Fatalf("TrainReport.EmulationRuns = %d, emulator counted %d", rep.EmulationRuns, got)
	}
}

// TestConcurrentVet exercises the vet-sequence counter from many
// goroutines (run under -race this is the regression test for the vetCount
// data race) and checks the sequence-reservation arithmetic stays exact.
func TestConcurrentVet(t *testing.T) {
	ck, corpus := trainedChecker(t, 400)
	start := ck.VetCount()

	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := ck.Vet(context.Background(), Submission{Program: corpus.Program((w*perWorker + i) % corpus.Len())}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := ck.VetCount() - start; got != workers*perWorker {
		t.Fatalf("vet count advanced by %d, want %d", got, workers*perWorker)
	}
	first := ck.ReserveVetSeqs(10)
	if first != ck.VetCount()-9 {
		t.Fatalf("ReserveVetSeqs returned %d with count %d, want first of the reserved block", first, ck.VetCount())
	}
}
