package apk

import (
	"archive/zip"
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"apichecker/internal/behavior"
)

// rezipLying rewrites one entry of the archive with a raw (stored) copy
// whose central-directory size field declares lieSize instead of the real
// payload length — the shape of a hand-crafted decompression bomb or a
// corrupted directory.
func rezipLying(t *testing.T, data []byte, entry string, lieSize uint64) []byte {
	t.Helper()
	return rezipLyingAll(t, data, map[string]uint64{entry: lieSize})
}

// rezipLyingAll is rezipLying for several entries at once — lies must be
// planted in a single pass, because a lying archive no longer round-trips
// through the zip reader (it verifies sizes on entry reads).
func rezipLyingAll(t *testing.T, data []byte, lies map[string]uint64) []byte {
	t.Helper()
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		payload := new(bytes.Buffer)
		if _, err := payload.ReadFrom(rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
		lieSize, lying := lies[f.Name]
		if !lying {
			w, err := zw.Create(f.Name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(payload.Bytes()); err != nil {
				t.Fatal(err)
			}
			continue
		}
		hdr := &zip.FileHeader{
			Name:               f.Name,
			Method:             zip.Store,
			UncompressedSize64: lieSize,
			CompressedSize64:   uint64(payload.Len()),
			CRC32:              crc32.ChecksumIEEE(payload.Bytes()),
		}
		w, err := zw.CreateRaw(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(payload.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseRejectsOversizedDeclaration(t *testing.T) {
	p := program(6, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	bomb := rezipLying(t, data, "classes.dex", MaxDecodedBytes+1)
	_, err = Parse(bomb)
	if err == nil {
		t.Fatal("Parse accepted an archive declaring more than MaxDecodedBytes")
	}
	if !errors.Is(err, ErrOversized) {
		t.Errorf("error %v does not wrap ErrOversized", err)
	}
	if !errors.Is(err, ErrBadAPK) {
		t.Errorf("error %v does not wrap ErrBadAPK", err)
	}
}

func TestParseRejectsOverflowingDeclarations(t *testing.T) {
	p := program(6, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	// Two entries each declaring ~2^63 bytes wrap the summed uint64 total
	// to a small value that passes the aggregate bound; the per-entry check
	// must reject them before the sum (and before the arena slice math,
	// where int(2^63) goes negative and panics).
	bomb := rezipLyingAll(t, data, map[string]uint64{
		"classes.dex":         1 << 63,
		"AndroidManifest.xml": 1 << 63,
	})
	_, err = Parse(bomb)
	if err == nil {
		t.Fatal("Parse accepted an archive whose declared sizes overflow uint64")
	}
	if !errors.Is(err, ErrOversized) {
		t.Errorf("error %v does not wrap ErrOversized", err)
	}
}

func TestParseRejectsSizeLie(t *testing.T) {
	p := program(7, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	// Declares fewer bytes than the stored payload actually holds: the
	// arena sub-slice would silently truncate without the probe check.
	short := rezipLying(t, data, "assets/behavior.bin", 1)
	if _, err := Parse(short); err == nil {
		t.Error("Parse accepted an entry longer than its declared size")
	}
}

func TestDigestOnlyMatchesDigest(t *testing.T) {
	p := program(8, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	if DigestOnly(data) != Digest(data) {
		t.Error("DigestOnly and Digest disagree")
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.SHA256 != DigestOnly(data) {
		t.Error("parse-time SHA256 differs from DigestOnly")
	}
}
