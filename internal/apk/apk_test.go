package apk

import (
	"bytes"
	"testing"

	"apichecker/internal/behavior"
	"apichecker/internal/framework"
)

var (
	testU   = framework.MustGenerate(framework.TestConfig(3000))
	testGen = behavior.NewGenerator(testU)
)

func program(seed int64, label behavior.Label, fam behavior.Family) *behavior.Program {
	return testGen.Generate(behavior.Spec{
		PackageName: "com.apk.test",
		Version:     2,
		Seed:        seed,
		Label:       label,
		Family:      fam,
		Category:    behavior.CategoryMedia,
	})
}

func TestBuildParseRoundTrip(t *testing.T) {
	p := program(5, behavior.Malicious, behavior.FamilySMSFraud)
	data, parsed, err := BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.PackageName() != p.PackageName || parsed.VersionCode() != p.Version {
		t.Errorf("identity = %s/%d", parsed.PackageName(), parsed.VersionCode())
	}
	if parsed.Size != int64(len(data)) {
		t.Errorf("Size = %d, want %d", parsed.Size, len(data))
	}
	if len(parsed.MD5) != 32 {
		t.Errorf("MD5 = %q", parsed.MD5)
	}
	if len(parsed.Program.Activities) != len(p.Activities) {
		t.Errorf("activities = %d, want %d", len(parsed.Program.Activities), len(p.Activities))
	}
	if len(parsed.Manifest.Permissions) != len(p.Permissions) {
		t.Errorf("permissions = %d, want %d", len(parsed.Manifest.Permissions), len(p.Permissions))
	}
}

func TestBuildDeterministic(t *testing.T) {
	p := program(9, behavior.Benign, behavior.FamilyNone)
	a, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Build is not deterministic")
	}
}

func TestMD5DistinguishesApps(t *testing.T) {
	p1 := program(1, behavior.Benign, behavior.FamilyNone)
	p2 := program(2, behavior.Benign, behavior.FamilyNone)
	_, a1, err := BuildAndParse(p1, testU)
	if err != nil {
		t.Fatal(err)
	}
	_, a2, err := BuildAndParse(p2, testU)
	if err != nil {
		t.Fatal(err)
	}
	// Same package name, different content: different apps (§4.1).
	if a1.PackageName() != a2.PackageName() {
		t.Fatal("test setup: packages differ")
	}
	if a1.MD5 == a2.MD5 {
		t.Error("different content produced identical MD5 identity")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("definitely not a zip")); err == nil {
		t.Error("Parse accepted non-zip input")
	}
}

func TestParseRejectsMissingEntries(t *testing.T) {
	p := program(3, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the zip without classes.dex.
	stripped := rezipWithout(t, data, "classes.dex")
	if _, err := Parse(stripped); err == nil {
		t.Error("Parse accepted APK without classes.dex")
	}
	stripped = rezipWithout(t, data, "assets/behavior.bin")
	if _, err := Parse(stripped); err == nil {
		t.Error("Parse accepted APK without behavior.bin")
	}
}

func TestNativeLibsPackaged(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := program(seed, behavior.Benign, behavior.FamilyNone)
		if len(p.NativeLibs) == 0 {
			continue
		}
		data, err := Build(p, testU)
		if err != nil {
			t.Fatal(err)
		}
		for _, lib := range p.NativeLibs {
			if !zipHasEntry(t, data, lib) {
				t.Errorf("native lib %s missing from archive", lib)
			}
		}
		return
	}
	t.Skip("no generated program carried native libs")
}

func TestSignaturePresent(t *testing.T) {
	p := program(4, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	if !zipHasEntry(t, data, "META-INF/MANIFEST.MF") {
		t.Error("signature manifest missing")
	}
}
