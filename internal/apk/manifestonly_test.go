package apk

import (
	"errors"
	"reflect"
	"testing"

	"apichecker/internal/behavior"
)

// TestParseManifestOnlyMatchesFullParse: the fast path must decode the
// same manifest the full arena parse does, byte for byte of meaning.
func TestParseManifestOnlyMatchesFullParse(t *testing.T) {
	p := program(12, behavior.Malicious, behavior.FamilySMSFraud)
	data, parsed, err := BuildAndParse(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseManifestOnly(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, parsed.Manifest) {
		t.Errorf("manifest-only parse diverged from full parse:\n%+v\n%+v", m, parsed.Manifest)
	}
}

func TestParseManifestOnlyRejectsGarbage(t *testing.T) {
	if _, err := ParseManifestOnly([]byte("definitely not a zip")); !errors.Is(err, ErrBadAPK) {
		t.Errorf("ParseManifestOnly(garbage) = %v, want ErrBadAPK", err)
	}
}

func TestParseManifestOnlyRejectsMissingManifest(t *testing.T) {
	p := program(13, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	stripped := rezipWithout(t, data, "AndroidManifest.xml")
	if _, err := ParseManifestOnly(stripped); !errors.Is(err, ErrBadAPK) {
		t.Errorf("ParseManifestOnly(no manifest) = %v, want ErrBadAPK", err)
	}
}

// TestParseManifestOnlyRejectsOversizedDeclaration: the fast path carries
// the same zip-bomb gate as Parse — a lying manifest declaration is
// rejected before any allocation.
func TestParseManifestOnlyRejectsOversizedDeclaration(t *testing.T) {
	p := program(14, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	bomb := rezipLying(t, data, "AndroidManifest.xml", MaxDecodedBytes+1)
	_, err = ParseManifestOnly(bomb)
	if !errors.Is(err, ErrOversized) || !errors.Is(err, ErrBadAPK) {
		t.Errorf("ParseManifestOnly(bomb) = %v, want ErrOversized wrapped in ErrBadAPK", err)
	}
	// A dex bomb is invisible to the manifest-only path — it never touches
	// that entry.
	dexBomb := rezipLying(t, data, "classes.dex", MaxDecodedBytes+1)
	if _, err := ParseManifestOnly(dexBomb); err != nil {
		t.Errorf("ParseManifestOnly ignored-entry bomb: %v", err)
	}
}

// TestParseManifestOnlyRejectsSizeLie: a manifest entry longer than its
// declared size is a corrupt directory, same as the full parse.
func TestParseManifestOnlyRejectsSizeLie(t *testing.T) {
	p := program(15, behavior.Benign, behavior.FamilyNone)
	data, err := Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	short := rezipLying(t, data, "AndroidManifest.xml", 1)
	if _, err := ParseManifestOnly(short); !errors.Is(err, ErrBadAPK) {
		t.Errorf("ParseManifestOnly(size lie) = %v, want ErrBadAPK", err)
	}
}

// BenchmarkParseManifestOnly vs BenchmarkParseFull: the triage tier's
// decode saving — the fast path skips dex + behaviour + arena work.
func BenchmarkParseManifestOnly(b *testing.B) {
	data := benchArchive(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseManifestOnly(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseFull(b *testing.B) {
	data := benchArchive(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchArchive(b *testing.B) []byte {
	b.Helper()
	p := testGen.Generate(behavior.Spec{
		PackageName: "com.apk.bench", Version: 3, Seed: 99,
		Label: behavior.Malicious, Family: behavior.FamilySpyware,
		Category: behavior.CategoryMedia,
	})
	data, err := Build(p, testU)
	if err != nil {
		b.Fatal(err)
	}
	return data
}
