package apk

import (
	"testing"

	"apichecker/internal/behavior"
)

// FuzzParse hardens APK parsing against corrupt archives: it must reject
// or accept, never panic, and accepted archives must be internally
// consistent.
func FuzzParse(f *testing.F) {
	p := testGen.Generate(behavior.Spec{
		PackageName: "com.fuzz.seed", Version: 1, Seed: 99,
		Label: behavior.Benign, Category: behavior.CategoryTool,
	})
	good, err := Build(p, testU)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("PK\x03\x04 not really a zip"))
	if len(good) > 64 {
		f.Add(good[:64])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return
		}
		if parsed.Manifest == nil || parsed.Dex == nil || parsed.Program == nil {
			t.Fatal("accepted APK with missing parts")
		}
		if parsed.PackageName() != parsed.Program.PackageName {
			t.Fatal("accepted APK with inconsistent identity")
		}
		if len(parsed.MD5) != 32 {
			t.Fatal("accepted APK without identity hash")
		}
	})
}
