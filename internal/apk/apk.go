// Package apk builds and parses Android application packages.
//
// An APK is a ZIP archive; ours contains the same load-bearing entries a
// real one does:
//
//	AndroidManifest.xml  — configuration (package, permissions, components)
//	classes.dex          — compiled code (see internal/dex)
//	assets/behavior.bin  — the executable semantics (see internal/behavior);
//	                       this plays the role of the bytecode our emulator
//	                       actually runs
//	lib/<abi>/*.so       — native libraries (ARM; markers only)
//	META-INF/MANIFEST.MF — digest manifest standing in for the signature
//
// App identity follows the paper (§4.1): APKs with the same package name
// but different MD5 hashes are different apps; same package name with a
// higher versionCode is an update.
package apk

import (
	"archive/zip"
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"

	"apichecker/internal/behavior"
	"apichecker/internal/dex"
	"apichecker/internal/framework"
	"apichecker/internal/manifest"
)

// ErrBadAPK marks a submission that is not a well-formed APK archive:
// not a zip, missing load-bearing entries, undecodable manifest/dex/
// behaviour blobs, or inconsistent package identity. Every Parse failure
// wraps it, so callers branch with errors.Is(err, ErrBadAPK) instead of
// string matching.
var ErrBadAPK = errors.New("bad APK")

// ErrOversized marks an archive whose declared uncompressed payload
// exceeds MaxDecodedBytes — a decompression-bomb guard on the submission
// path. It always arrives wrapped in ErrBadAPK.
var ErrOversized = errors.New("apk: declared uncompressed size exceeds decode bound")

// MaxDecodedBytes bounds the total uncompressed payload Parse will
// materialize for one archive. Market submissions are a few MiB of dex
// and assets; anything declaring gigabytes is a zip bomb, not an app.
const MaxDecodedBytes = 64 << 20

// APK is a parsed package.
type APK struct {
	Manifest *manifest.Manifest
	Dex      *dex.File
	Program  *behavior.Program

	// MD5 is the hex digest of the serialized archive, the app's
	// identity key in the market database.
	MD5 string

	// SHA256 is the content digest of the serialized archive — the
	// verdict-cache key on the serving path. Computed once at parse time;
	// empty for an APK assembled by hand rather than parsed from bytes.
	SHA256 string

	// Size is the archive size in bytes.
	Size int64
}

// Digest returns the content digest of raw archive bytes: hex-encoded
// sha256, the key byte-identical resubmissions are deduplicated under.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// DigestOnly is the serving-path fast key: it hashes the raw archive bytes
// without opening the zip directory or materializing any entry, because
// the cache-hit path needs only the digest — a byte-identical resubmission
// is answered before any decode work happens. It is exactly Digest, named
// so call sites on the hot path document that no parse is implied.
func DigestOnly(data []byte) string { return Digest(data) }

// PackageName returns the manifest package name.
func (a *APK) PackageName() string { return a.Manifest.Package }

// VersionCode returns the manifest version code.
func (a *APK) VersionCode() int { return a.Manifest.VersionCode }

// Build serializes a program into an APK archive. The universe resolves
// permission/intent/API names for the manifest and dex views.
func Build(p *behavior.Program, u *framework.Universe) ([]byte, error) {
	m, err := p.Manifest(u)
	if err != nil {
		return nil, fmt.Errorf("apk: build %s: %w", p.PackageName, err)
	}
	manifestXML, err := m.Encode()
	if err != nil {
		return nil, fmt.Errorf("apk: build %s: %w", p.PackageName, err)
	}
	d, err := p.Dex(u)
	if err != nil {
		return nil, fmt.Errorf("apk: build %s: %w", p.PackageName, err)
	}
	dexBytes, err := d.Encode()
	if err != nil {
		return nil, fmt.Errorf("apk: build %s: %w", p.PackageName, err)
	}
	prog, err := p.Encode()
	if err != nil {
		return nil, fmt.Errorf("apk: build %s: %w", p.PackageName, err)
	}

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	write := func(name string, data []byte) error {
		// Deterministic archives: fixed method, no timestamps.
		w, err := zw.CreateHeader(&zip.FileHeader{Name: name, Method: zip.Deflate})
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	entries := map[string][]byte{
		"AndroidManifest.xml": manifestXML,
		"classes.dex":         dexBytes,
		"assets/behavior.bin": prog,
		"resources.arsc":      resourceBlob(p),
	}
	for _, lib := range p.NativeLibs {
		entries[lib] = []byte("\x7fELF-ARM-stub:" + lib)
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := write(name, entries[name]); err != nil {
			return nil, fmt.Errorf("apk: build %s: write %s: %w", p.PackageName, name, err)
		}
	}
	if err := write("META-INF/MANIFEST.MF", signatureFor(entries)); err != nil {
		return nil, fmt.Errorf("apk: build %s: sign: %w", p.PackageName, err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: build %s: close: %w", p.PackageName, err)
	}
	return buf.Bytes(), nil
}

// resourceBlob emits a small filler resource table so archive sizes vary
// plausibly with app complexity.
func resourceBlob(p *behavior.Program) []byte {
	n := 256 + 64*len(p.Activities)
	blob := make([]byte, n)
	seed := uint64(p.Seed)
	for i := range blob {
		seed = seed*6364136223846793005 + 1442695040888963407
		blob[i] = byte(seed >> 56)
	}
	return blob
}

// signatureFor builds the digest manifest.
func signatureFor(entries map[string][]byte) []byte {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("Manifest-Version: 1.0\nCreated-By: apichecker-apkgen\n\n")
	for _, name := range names {
		sum := md5.Sum(entries[name])
		fmt.Fprintf(&buf, "Name: %s\nMD5-Digest: %s\n\n", name, hex.EncodeToString(sum[:]))
	}
	return buf.Bytes()
}

// Parse opens an APK archive and decodes its load-bearing entries. Any
// malformed archive fails with an error wrapping ErrBadAPK.
func Parse(data []byte) (*APK, error) {
	out, err := parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadAPK, err)
	}
	return out, nil
}

// loadEntries are the archive members Parse materializes, in arena layout
// order. Everything else (resources, native-lib markers, the signature
// manifest) is validated structurally by the zip reader but never copied
// out.
var loadEntries = [...]string{"AndroidManifest.xml", "classes.dex", "assets/behavior.bin"}

// readEntrySized decompresses one zip entry into dst, which the caller
// pre-sized from the entry's declared UncompressedSize64. A decompressed
// stream shorter or longer than declared is a corrupt archive, not a
// truncation to tolerate: the declared size drove the allocation, so a
// mismatch means the central directory lies.
func readEntrySized(f *zip.File, dst []byte) error {
	rc, err := f.Open()
	if err != nil {
		return err
	}
	defer rc.Close()
	if _, err := io.ReadFull(rc, dst); err != nil {
		return fmt.Errorf("entry %s shorter than declared %d bytes: %w", f.Name, len(dst), err)
	}
	var probe [1]byte
	if n, err := rc.Read(probe[:]); n != 0 || (err != nil && err != io.EOF) {
		return fmt.Errorf("entry %s longer than declared %d bytes", f.Name, len(dst))
	}
	return nil
}

func parse(data []byte) (*APK, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: parse: not a zip archive: %w", err)
	}

	// One pass over the central directory: locate the load-bearing entries
	// and bound the total decode size before allocating anything. Sizes
	// come from the directory, so the arena is allocated exactly once at
	// its final size — no per-entry io.ReadAll growth copies.
	var files [len(loadEntries)]*zip.File
	var total uint64
	for _, f := range zr.File {
		for i, name := range loadEntries {
			if f.Name == name && files[i] == nil {
				// Per-entry bound before summing: the declared sizes are
				// attacker-controlled zip64 fields, and two ~2^63
				// declarations would wrap the uint64 total right past the
				// aggregate check below (and then panic slicing the arena).
				if f.UncompressedSize64 > MaxDecodedBytes {
					return nil, fmt.Errorf("%w: %s declares %d bytes (> %d)",
						ErrOversized, f.Name, f.UncompressedSize64, MaxDecodedBytes)
				}
				files[i] = f
				total += f.UncompressedSize64
			}
		}
	}
	// total cannot overflow: each addend was individually bounded above.
	if total > MaxDecodedBytes {
		return nil, fmt.Errorf("%w (%d > %d)", ErrOversized, total, MaxDecodedBytes)
	}
	for i, f := range files {
		if f == nil {
			return nil, fmt.Errorf("apk: parse: entry %s missing", loadEntries[i])
		}
	}

	// Arena decode: one sized buffer, entry payloads sub-sliced out of it.
	arena := make([]byte, total)
	var payloads [len(loadEntries)][]byte
	off := 0
	for i, f := range files {
		n := int(f.UncompressedSize64)
		payloads[i] = arena[off : off+n : off+n]
		off += n
		if err := readEntrySized(f, payloads[i]); err != nil {
			return nil, fmt.Errorf("apk: parse: %w", err)
		}
	}
	manifestXML, dexBytes, progBytes := payloads[0], payloads[1], payloads[2]

	out := &APK{Size: int64(len(data))}
	if out.Manifest, err = manifest.Decode(manifestXML); err != nil {
		return nil, fmt.Errorf("apk: parse: %w", err)
	}
	if out.Dex, err = dex.Decode(dexBytes); err != nil {
		return nil, fmt.Errorf("apk: parse %s: %w", out.Manifest.Package, err)
	}
	if out.Program, err = behavior.Decode(progBytes); err != nil {
		return nil, fmt.Errorf("apk: parse %s: %w", out.Manifest.Package, err)
	}
	if out.Program.PackageName != out.Manifest.Package {
		return nil, fmt.Errorf("apk: parse: manifest package %s != program package %s",
			out.Manifest.Package, out.Program.PackageName)
	}
	sum := md5.Sum(data)
	out.MD5 = hex.EncodeToString(sum[:])
	out.SHA256 = Digest(data)
	return out, nil
}

// ParseManifestOnly decodes just AndroidManifest.xml from an APK archive:
// one central-directory pass to locate the entry, one sized decompression,
// one XML decode. No dex, no behaviour blob, no arena — the triage tier's
// microsecond pre-screen path, which needs only permissions and component
// metadata. The same per-entry zip-bomb bound applies as in Parse, and any
// malformed archive fails with an error wrapping ErrBadAPK.
func ParseManifestOnly(data []byte) (*manifest.Manifest, error) {
	m, err := parseManifestOnly(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadAPK, err)
	}
	return m, nil
}

func parseManifestOnly(data []byte) (*manifest.Manifest, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: parse: not a zip archive: %w", err)
	}
	var mf *zip.File
	for _, f := range zr.File {
		if f.Name == loadEntries[0] && mf == nil {
			// Same attacker-controlled-size discipline as parse: bound the
			// declared size before allocating for it.
			if f.UncompressedSize64 > MaxDecodedBytes {
				return nil, fmt.Errorf("%w: %s declares %d bytes (> %d)",
					ErrOversized, f.Name, f.UncompressedSize64, MaxDecodedBytes)
			}
			mf = f
		}
	}
	if mf == nil {
		return nil, fmt.Errorf("apk: parse: entry %s missing", loadEntries[0])
	}
	buf := make([]byte, mf.UncompressedSize64)
	if err := readEntrySized(mf, buf); err != nil {
		return nil, fmt.Errorf("apk: parse: %w", err)
	}
	m, err := manifest.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("apk: parse: %w", err)
	}
	return m, nil
}

// BuildAndParse is a convenience composing Build and Parse; it returns the
// archive bytes alongside the parsed view.
func BuildAndParse(p *behavior.Program, u *framework.Universe) ([]byte, *APK, error) {
	data, err := Build(p, u)
	if err != nil {
		return nil, nil, err
	}
	parsed, err := Parse(data)
	if err != nil {
		return nil, nil, fmt.Errorf("apk: self-check failed: %w", err)
	}
	return data, parsed, nil
}
