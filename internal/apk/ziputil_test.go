package apk

import (
	"archive/zip"
	"bytes"
	"io"
	"testing"
)

// rezipWithout copies the archive, dropping one entry.
func rezipWithout(t *testing.T, data []byte, drop string) []byte {
	t.Helper()
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, f := range zr.File {
		if f.Name == drop {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		w, err := zw.Create(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(w, rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func zipHasEntry(t *testing.T, data []byte, name string) bool {
	t.Helper()
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range zr.File {
		if f.Name == name {
			return true
		}
	}
	return false
}
