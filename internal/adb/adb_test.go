package adb

import (
	"sync"
	"testing"

	"apichecker/internal/apk"
	"apichecker/internal/behavior"
	"apichecker/internal/emulator"
	"apichecker/internal/framework"
	"apichecker/internal/hook"
	"apichecker/internal/monkey"
)

var (
	testU   = framework.MustGenerate(framework.TestConfig(3000))
	testGen = behavior.NewGenerator(testU)
)

func testRegistry(t *testing.T) *hook.Registry {
	t.Helper()
	return hook.MustNewRegistry(testU, testU.DesignedKeyAPIs())
}

func buildAPK(t *testing.T, pkg string, version int, seed int64) []byte {
	t.Helper()
	p := testGen.Generate(behavior.Spec{
		PackageName: pkg, Version: version, Seed: seed,
		Label: behavior.Benign, Category: behavior.CategoryTool,
	})
	data, err := apk.Build(p, testU)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInstallRunUninstallClear(t *testing.T) {
	dev := NewDevice("emulator-5554", emulator.GoogleEmulator, testRegistry(t))
	data := buildAPK(t, "com.adb.app", 3, 1)

	parsed, err := dev.Install(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.InstalledPackages(); len(got) != 1 || got[0] != "com.adb.app" {
		t.Fatalf("installed = %v", got)
	}
	res, err := dev.RunMonkey(parsed.PackageName(), monkey.ProductionConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 5000 {
		t.Errorf("events = %d", res.Events)
	}
	if dev.State() != StateDirty {
		t.Errorf("state after run = %v, want dirty", dev.State())
	}
	if len(dev.ResidualFiles("com.adb.app")) == 0 {
		t.Error("no residual data after emulation")
	}
	if err := dev.Uninstall("com.adb.app"); err != nil {
		t.Fatal(err)
	}
	if len(dev.ResidualFiles("com.adb.app")) == 0 {
		t.Error("uninstall removed residual data; only ClearData should")
	}
	dev.ClearData("com.adb.app")
	if !dev.Clean() || dev.State() != StateIdle {
		t.Errorf("device not clean/idle: state=%v", dev.State())
	}
	logcat := dev.Logcat()
	if len(logcat) == 0 {
		t.Error("empty logcat")
	}
	if second := dev.Logcat(); len(second) != 0 {
		t.Error("logcat not drained")
	}
}

func TestInstallRefusals(t *testing.T) {
	dev := NewDevice("emulator-5554", emulator.GoogleEmulator, testRegistry(t))
	if _, err := dev.Install([]byte("junk")); err == nil {
		t.Error("corrupt APK installed")
	}
	data := buildAPK(t, "com.adb.dup", 5, 2)
	if _, err := dev.Install(data); err != nil {
		t.Fatal(err)
	}
	// Same version again: downgrade/redundant refusal.
	if _, err := dev.Install(data); err == nil {
		t.Error("duplicate install accepted")
	}
	// Upgrade is fine.
	upgrade := buildAPK(t, "com.adb.dup", 6, 3)
	if _, err := dev.Install(upgrade); err != nil {
		t.Errorf("upgrade refused: %v", err)
	}
	// Dirty devices refuse installs.
	if _, err := dev.RunMonkey("com.adb.dup", monkey.ProductionConfig(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Install(buildAPK(t, "com.adb.other", 1, 4)); err == nil {
		t.Error("dirty device accepted install")
	}
}

func TestRunMonkeyRequiresInstall(t *testing.T) {
	dev := NewDevice("emulator-5554", emulator.GoogleEmulator, testRegistry(t))
	if _, err := dev.RunMonkey("com.not.there", monkey.ProductionConfig(1)); err == nil {
		t.Error("monkey ran on missing package")
	}
	if err := dev.Uninstall("com.not.there"); err == nil {
		t.Error("uninstalled missing package")
	}
}

func TestSessionVetLeavesDeviceClean(t *testing.T) {
	dev := NewDevice("emulator-5554", emulator.LightweightEmulator, testRegistry(t))
	s := NewSession(dev)
	for i := 0; i < 5; i++ {
		data := buildAPK(t, "com.adb.seq", i+1, int64(100+i))
		vr, err := s.Vet(data, monkey.ProductionConfig(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if vr.Run == nil || vr.Duration <= 0 {
			t.Fatalf("vet result %+v", vr)
		}
		if !dev.Clean() || dev.State() != StateIdle {
			t.Fatalf("device dirty after vet %d", i)
		}
		if len(vr.Logcat) == 0 {
			t.Error("session lost the logcat")
		}
	}
}

func TestSessionVetCleansUpOnFailure(t *testing.T) {
	dev := NewDevice("emulator-5554", emulator.GoogleEmulator, testRegistry(t))
	s := NewSession(dev)
	if _, err := s.Vet([]byte("garbage"), monkey.ProductionConfig(1)); err == nil {
		t.Fatal("garbage vetted")
	}
	if !dev.Clean() || dev.State() != StateIdle {
		t.Error("device dirty after failed vet")
	}
	// Invalid monkey config fails mid-sequence; cleanup must still run.
	data := buildAPK(t, "com.adb.mid", 1, 9)
	if _, err := s.Vet(data, monkey.Config{Events: 0}); err == nil {
		t.Fatal("invalid monkey config accepted")
	}
	if !dev.Clean() || dev.State() != StateIdle {
		t.Errorf("device dirty after mid-sequence failure: state=%v installed=%v",
			dev.State(), dev.InstalledPackages())
	}
}

func TestPoolCheckoutRelease(t *testing.T) {
	reg := testRegistry(t)
	pool, err := NewPool(4, emulator.LightweightEmulator, reg)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 4 {
		t.Fatalf("size = %d", pool.Size())
	}
	if _, err := NewPool(0, emulator.LightweightEmulator, reg); err == nil {
		t.Error("zero-size pool accepted")
	}

	// Concurrent vetting across the pool: every device must come back
	// clean and serials must stay distinct.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := pool.Checkout()
			defer func() {
				if err := pool.Release(dev); err != nil {
					errs <- err
				}
			}()
			s := NewSession(dev)
			p := testGen.Generate(behavior.Spec{
				PackageName: "com.pool.app", Version: w + 1, Seed: int64(w) * 31,
				Label: behavior.Benign, Category: behavior.CategoryGame,
			})
			data, err := apk.Build(p, testU)
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Vet(data, monkey.ProductionConfig(int64(w))); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	serials := map[string]bool{}
	for i := 0; i < pool.Size(); i++ {
		dev := pool.Checkout()
		if serials[dev.Serial()] {
			t.Errorf("duplicate serial %s", dev.Serial())
		}
		serials[dev.Serial()] = true
		if !dev.Clean() {
			t.Errorf("device %s returned unclean", dev.Serial())
		}
	}
}

func TestPoolRefusesUncleanRelease(t *testing.T) {
	pool, err := NewPool(1, emulator.GoogleEmulator, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	dev := pool.Checkout()
	if _, err := dev.Install(buildAPK(t, "com.pool.dirty", 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := pool.Release(dev); err == nil {
		t.Error("unclean device released")
	}
}
