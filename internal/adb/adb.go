// Package adb is the device control plane: the Android-debug-bridge layer
// the production system drives emulators through (§4.2: "we sequentially
// execute adb commands to automatically install the app, run the Monkey UI
// exerciser, record the running logs, uninstall the app, and clear up the
// residual data").
//
// A Device wraps one emulator instance with package-manager state, a
// logcat buffer, and residual-data tracking; a Session performs the full
// per-app vetting sequence with guaranteed cleanup, so one submission can
// never contaminate the next (stale caches and leftover databases are a
// classic source of cross-app contamination in emulator farms).
package adb

import (
	"context"
	"fmt"
	"sort"
	"time"

	"apichecker/internal/apk"
	"apichecker/internal/emulator"
	"apichecker/internal/hook"
	"apichecker/internal/monkey"
)

// DeviceState tracks a device's lifecycle.
type DeviceState uint8

const (
	// StateIdle: ready for the next app.
	StateIdle DeviceState = iota
	// StateBusy: an emulation is in flight.
	StateBusy
	// StateDirty: the last app was not cleaned up; installing is
	// refused until ClearData runs.
	StateDirty
)

func (s DeviceState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateDirty:
		return "dirty"
	}
	return fmt.Sprintf("DeviceState(%d)", uint8(s))
}

// Device is one controlled emulator instance.
type Device struct {
	serial string
	emu    *emulator.Emulator

	state     DeviceState
	installed map[string]*apk.APK
	// residual tracks per-package leftover files (databases, caches)
	// created during emulation; uninstalling does NOT remove them —
	// that is what "clear up the residual data" is for.
	residual map[string][]string
	logcat   []string
}

// NewDevice creates a device over an emulation profile and hook registry.
func NewDevice(serial string, profile emulator.Profile, reg *hook.Registry) *Device {
	return &Device{
		serial:    serial,
		emu:       emulator.New(profile, reg),
		installed: make(map[string]*apk.APK),
		residual:  make(map[string][]string),
	}
}

// Serial returns the device identifier.
func (d *Device) Serial() string { return d.serial }

// State returns the device lifecycle state.
func (d *Device) State() DeviceState { return d.state }

// Emulator returns the underlying engine.
func (d *Device) Emulator() *emulator.Emulator { return d.emu }

// InstalledPackages lists installed package names, sorted.
func (d *Device) InstalledPackages() []string {
	out := make([]string, 0, len(d.installed))
	for pkg := range d.installed {
		out = append(out, pkg)
	}
	sort.Strings(out)
	return out
}

// ResidualFiles returns leftover files for a package.
func (d *Device) ResidualFiles(pkg string) []string { return d.residual[pkg] }

// Logcat drains the device log buffer.
func (d *Device) Logcat() []string {
	out := d.logcat
	d.logcat = nil
	return out
}

func (d *Device) logf(format string, args ...any) {
	d.logcat = append(d.logcat, fmt.Sprintf(format, args...))
}

// Install parses and installs an APK. It refuses on a busy/dirty device,
// on corrupt archives, and on duplicate installs.
func (d *Device) Install(data []byte) (*apk.APK, error) {
	if d.state != StateIdle {
		return nil, fmt.Errorf("adb: %s: install on %s device", d.serial, d.state)
	}
	parsed, err := apk.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("adb: %s: install: %w", d.serial, err)
	}
	return parsed, d.installParsed(parsed)
}

// InstallParsed installs an already-parsed APK (the simulation fast path).
func (d *Device) InstallParsed(parsed *apk.APK) error {
	if d.state != StateIdle {
		return fmt.Errorf("adb: %s: install on %s device", d.serial, d.state)
	}
	return d.installParsed(parsed)
}

func (d *Device) installParsed(parsed *apk.APK) error {
	pkg := parsed.PackageName()
	if existing, dup := d.installed[pkg]; dup {
		if existing.VersionCode() >= parsed.VersionCode() {
			return fmt.Errorf("adb: %s: INSTALL_FAILED_VERSION_DOWNGRADE: %s %d <= %d",
				d.serial, pkg, parsed.VersionCode(), existing.VersionCode())
		}
	}
	d.installed[pkg] = parsed
	d.logf("PackageManager: installed %s versionCode=%d", pkg, parsed.VersionCode())
	return nil
}

// RunMonkey exercises an installed package and records the run into the
// logcat buffer (activity starts, crash reports, fallback notices).
func (d *Device) RunMonkey(pkg string, mk monkey.Config) (*emulator.Result, error) {
	return d.RunMonkeyContext(context.Background(), pkg, mk)
}

// RunMonkeyContext is RunMonkey under a context: a cancelled or expired
// context aborts the emulation at the next crash-restart or event-batch
// boundary. The device is left dirty (exactly as a real aborted run would),
// so the session cleanup path still applies.
func (d *Device) RunMonkeyContext(ctx context.Context, pkg string, mk monkey.Config) (*emulator.Result, error) {
	parsed, ok := d.installed[pkg]
	if !ok {
		return nil, fmt.Errorf("adb: %s: monkey: package %s not installed", d.serial, pkg)
	}
	if d.state != StateIdle {
		return nil, fmt.Errorf("adb: %s: monkey on %s device", d.serial, d.state)
	}
	d.state = StateBusy
	defer func() { d.state = StateDirty }()

	res, err := d.emu.RunContext(ctx, parsed.Program, mk)
	if err != nil {
		return nil, fmt.Errorf("adb: %s: monkey %s: %w", d.serial, pkg, err)
	}
	d.logf("Monkey: injected %d events into %s", res.Events, pkg)
	for _, act := range res.Log.ReachedActivities {
		d.logf("ActivityManager: START u0 {cmp=%s}", act)
	}
	for i := 0; i < res.Crashed; i++ {
		d.logf("SystemServer: process %s crashed, restarting emulation", pkg)
	}
	if res.FellBack {
		d.logf("SystemServer: %s incompatible with x86 engine, fell back to %s", pkg, res.Profile)
	}
	// Emulation leaves app data behind.
	d.residual[pkg] = []string{
		"/data/data/" + pkg + "/databases/app.db",
		"/data/data/" + pkg + "/cache/webview",
		"/sdcard/Android/data/" + pkg,
	}
	return res, nil
}

// Uninstall removes the package but deliberately leaves residual data
// (matching pm uninstall semantics without the clear step).
func (d *Device) Uninstall(pkg string) error {
	if _, ok := d.installed[pkg]; !ok {
		return fmt.Errorf("adb: %s: uninstall: package %s not installed", d.serial, pkg)
	}
	delete(d.installed, pkg)
	d.logf("PackageManager: uninstalled %s", pkg)
	return nil
}

// ClearData removes a package's residual files and returns the device to
// idle.
func (d *Device) ClearData(pkg string) {
	delete(d.residual, pkg)
	if len(d.residual) == 0 && len(d.installed) == 0 && d.state == StateDirty {
		d.state = StateIdle
	}
	d.logf("pm clear %s: OK", pkg)
}

// Clean reports whether the device carries no apps and no residual data.
func (d *Device) Clean() bool {
	return len(d.installed) == 0 && len(d.residual) == 0
}

// Session performs the §4.2 per-app sequence with guaranteed cleanup.
type Session struct {
	dev *Device
}

// NewSession wraps a device.
func NewSession(dev *Device) *Session { return &Session{dev: dev} }

// Device returns the underlying device.
func (s *Session) Device() *Device { return s.dev }

// VetResult is the outcome of one full device session.
type VetResult struct {
	APK      *apk.APK
	Run      *emulator.Result
	Logcat   []string
	Duration time.Duration // virtual time incl. the run
}

// Vet installs, exercises, uninstalls and cleans in order, returning the
// run result and the session's logcat. The device is guaranteed idle and
// clean afterwards, whatever happened in between.
func (s *Session) Vet(data []byte, mk monkey.Config) (*VetResult, error) {
	return s.VetContext(context.Background(), data, mk)
}

// VetContext is Vet under a context. A context that expires mid-run aborts
// the emulation; the cleanup sequence (uninstall, clear residual data)
// still runs, so the device comes back idle and clean either way.
func (s *Session) VetContext(ctx context.Context, data []byte, mk monkey.Config) (*VetResult, error) {
	parsed, err := s.dev.Install(data)
	if err != nil {
		return nil, err
	}
	return s.finish(ctx, parsed, mk)
}

// VetParsed is Vet for an already-parsed APK.
func (s *Session) VetParsed(parsed *apk.APK, mk monkey.Config) (*VetResult, error) {
	return s.VetParsedContext(context.Background(), parsed, mk)
}

// VetParsedContext is VetParsed under a context: the pipeline's decode
// stage has already unpacked the archive, so the device sequence starts
// at install. Run results are bit-identical to VetContext over the same
// serialized bytes.
func (s *Session) VetParsedContext(ctx context.Context, parsed *apk.APK, mk monkey.Config) (*VetResult, error) {
	if err := s.dev.InstallParsed(parsed); err != nil {
		return nil, err
	}
	return s.finish(ctx, parsed, mk)
}

func (s *Session) finish(ctx context.Context, parsed *apk.APK, mk monkey.Config) (*VetResult, error) {
	pkg := parsed.PackageName()
	defer func() {
		// Cleanup must run even on failure paths.
		if _, still := s.dev.installed[pkg]; still {
			_ = s.dev.Uninstall(pkg)
		}
		s.dev.ClearData(pkg)
	}()
	res, err := s.dev.RunMonkeyContext(ctx, pkg, mk)
	if err != nil {
		return nil, err
	}
	if err := s.dev.Uninstall(pkg); err != nil {
		return nil, err
	}
	s.dev.ClearData(pkg)
	if !s.dev.Clean() {
		return nil, fmt.Errorf("adb: %s: residual state after vetting %s", s.dev.serial, pkg)
	}
	return &VetResult{
		APK:      parsed,
		Run:      res,
		Logcat:   s.dev.Logcat(),
		Duration: res.VirtualTime,
	}, nil
}

// Pool is a set of devices with FIFO checkout — the per-server 16-emulator
// deployment unit's control plane.
type Pool struct {
	devices []*Device
	free    chan *Device
}

// NewPool creates n devices sharing a profile and registry.
func NewPool(n int, profile emulator.Profile, reg *hook.Registry) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("adb: pool size %d", n)
	}
	p := &Pool{free: make(chan *Device, n)}
	for i := 0; i < n; i++ {
		dev := NewDevice(fmt.Sprintf("emulator-%04d", 5554+2*i), profile, reg)
		p.devices = append(p.devices, dev)
		p.free <- dev
	}
	return p, nil
}

// Size returns the device count.
func (p *Pool) Size() int { return len(p.devices) }

// Checkout blocks until a device is free.
func (p *Pool) Checkout() *Device { return <-p.free }

// Release returns a device to the pool; it must be clean.
func (p *Pool) Release(dev *Device) error {
	if !dev.Clean() {
		return fmt.Errorf("adb: release of unclean device %s", dev.serial)
	}
	p.free <- dev
	return nil
}
