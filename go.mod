module apichecker

go 1.24
